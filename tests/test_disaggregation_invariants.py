"""Invariant suite for prefill/decode disaggregation (repro.core.transfer).

The KV transfer scheduler moves live inferlets between shards mid-flight:
it pre-copies committed KV pages to a decode shard while the prefill tail
is still running, then migrates the whole resource space (pages, embed
slots, swapped host slots, queues, router placement) in one synchronous
handoff.  These tests hammer that machinery with seeded random fleets —
200 distinct interleavings across the two fleet tests — and check the
properties that must hold in *every* schedule:

* **KV-page conservation** — after a fleet drains, every shard's KV and
  embed pools are back at full capacity and the host tier is empty; the
  transfer scheduler holds no streams and no forward tracks.  Staged
  destination pages are pinned only by the transfer, so this catches any
  handoff path that forgets to adopt or unpin them.
* **Role separation** — in any schedule where no handoff was refused, a
  prefill shard never dispatches a single decode row (the handoff fires
  before the program can submit its first decode command).  A *refused*
  handoff (non-quiescent owner) deliberately strands the owner on the
  prefill shard until the retry: the decode rows it issues in that window
  are bounded and asserted exactly in the mid-chunk test below.
* **Abort safety** — terminating inferlets at random points (including
  mid-stream, with pages staged on a decode shard they will never reach)
  leaks nothing.
* **Residual-chunk ordering** — a sample retiring while another queue of
  the same inferlet still has chunked-prefill slices in flight must
  *refuse* the handoff (non-quiescent owner) and retry later; the
  deferred migration preserves chunk order, so the tokens match a
  non-disaggregated run bit-for-bit.

Style mirrors ``tests/test_resource_invariants.py``: seeded randomness
only, invariants checked against the real pools, teardown asserts full
conservation.
"""

import random

import pytest

from repro.core import InferletProgram, PieServer
from repro.core.config import ControlLayerConfig, PieConfig
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.support import Context, SamplingParams

# Two fleet tests x their seed ranges = 200 seeded interleavings.
CONSERVATION_SEEDS = range(0, 120)
ABORT_SEEDS = range(200, 280)


def build_server(
    sim,
    devices=3,
    prefill_shards=1,
    prefix_cache=True,
    kv_pages=72,
    host_kv_pages=32,
    chunk_tokens=8,
    batch_tokens=16,
):
    """A disaggregated cluster small enough that streams and handoffs
    actually contend: chunked prefill on, tiny chunk/batch budgets so
    prompts slice, a host tier so swap can interleave with migration."""
    config = PieConfig(
        gpu=GpuConfig(
            num_kv_pages=kv_pages, num_devices=devices, host_kv_pages=host_kv_pages
        ),
        control=ControlLayerConfig(
            prefix_cache=prefix_cache,
            placement_policy="disaggregated",
            disaggregation=True,
            prefill_shards=prefill_shards,
            chunked_prefill=True,
            prefill_chunk_tokens=chunk_tokens,
            max_batch_tokens=batch_tokens,
        ),
    )
    return PieServer(sim, config=config)


def check_invariants(server):
    """Post-drain conservation: nothing staged, nothing leaked, no decode
    work ever ran on a prefill shard."""
    service = server.service()
    transfer = service.transfer
    assert transfer is not None
    assert transfer.active_streams == 0
    assert not transfer._forwards, "forward tracks must die with their owners"
    for shard in service.shards:
        # The cache legitimately retains pages (that is its job); release
        # them so the pool check below is exact.
        if shard.prefix_cache is not None:
            shard.prefix_cache.drop_all()
        kv = shard.memory.kv_pages
        emb = shard.memory.embeds
        assert kv.num_free == kv.capacity, (
            f"shard {shard.index} ({shard.role}) leaked "
            f"{kv.capacity - kv.num_free} KV pages"
        )
        assert emb.num_free == emb.capacity, (
            f"shard {shard.index} ({shard.role}) leaked "
            f"{emb.capacity - emb.num_free} embed slots"
        )
        if shard.role == "prefill" and server.metrics.disagg_handoff_failures == 0:
            # Strict role separation: only a refused handoff may strand
            # decode work on a prefill shard (owner keeps decoding there
            # until the retry succeeds).
            assert shard.scheduler.stats.decode_rows_dispatched == 0, (
                f"prefill shard {shard.index} dispatched decode rows"
            )
    assert service.host_pool.num_used == 0, "host KV tier not drained"


def make_agent(name, prompt_len, max_tokens):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill("tok " * prompt_len + f"[{name}] ")
        out = await context.generate_until(max_tokens=max_tokens)
        context.free()
        return out

    return InferletProgram(name=name, main=main)


def run_fleet(seed, n_agents=5, devices=3, kill_fraction=0.0):
    """One seeded fleet: staggered launches, random prompt/output lengths,
    optionally a random subset of instances aborted at random times."""
    sim = Simulator(seed=seed)
    server = build_server(sim, devices=devices)
    rng = random.Random(seed)
    specs = []
    for i in range(n_agents):
        specs.append(
            {
                "name": f"inv{i}",
                "prompt_len": rng.randint(4, 56),
                "max_tokens": rng.randint(1, 4),
                "delay": rng.uniform(0.0, 0.5),
                "kill_at": (
                    rng.uniform(0.001, 0.8) if rng.random() < kill_fraction else None
                ),
            }
        )
    for spec in specs:
        server.register_program(
            make_agent(spec["name"], spec["prompt_len"], spec["max_tokens"])
        )

    async def killer(instance, delay):
        await sim.sleep(delay)
        if not instance.finished:
            server.lifecycle.abort(instance, "invariant-fleet chaos kill")

    async def one(spec):
        await sim.sleep(spec["delay"])
        instance, ready = server.lifecycle.launch(spec["name"])
        await ready
        if spec["kill_at"] is not None:
            sim.create_task(killer(instance, spec["kill_at"]))
        await server.lifecycle.wait_for_completion(instance)
        return instance

    async def run_all():
        return await sim.gather([sim.create_task(one(spec)) for spec in specs])

    instances = sim.run_until_complete(run_all())
    check_invariants(server)
    return server, instances


@pytest.mark.parametrize("seed", CONSERVATION_SEEDS)
def test_randomized_fleet_conserves_resources(seed):
    """No-kill fleets: every inferlet finishes, every finisher was handed
    off exactly once, and the pools come back whole (checked in
    ``check_invariants`` inside the runner)."""
    server, instances = run_fleet(seed)
    assert all(inst.status == "finished" for inst in instances)
    # Every agent samples at least one token, so every agent either
    # migrates or has each refusal (destination capacity) accounted.
    metrics = server.metrics
    assert metrics.disagg_handoffs + metrics.disagg_handoff_failures >= len(instances)
    if metrics.disagg_handoff_failures == 0:
        assert metrics.disagg_handoffs == len(instances)


@pytest.mark.parametrize("seed", ABORT_SEEDS)
def test_randomized_fleet_with_aborts_leaks_nothing(seed):
    """Chaos fleets: roughly half the instances are terminated at random
    points — before placement, mid-chunked-prefill with pages staged on a
    decode shard, or after the handoff.  Conservation must hold anyway."""
    server, instances = run_fleet(seed, kill_fraction=0.55)
    statuses = {inst.status for inst in instances}
    assert statuses <= {"finished", "terminated"}
    survivors = sum(1 for inst in instances if inst.status == "finished")
    assert server.metrics.disagg_handoffs >= survivors


def test_abort_mid_stream_frees_staged_pages():
    """Terminate one long-prompt inferlet at the exact moment its first
    KV pages have been streamed to the decode shard but the handoff has
    not happened: the staged destination pages (pinned only by the
    transfer scheduler) must all return to the free pool."""
    sim = Simulator(seed=11)
    server = build_server(sim, devices=2)
    server.register_program(make_agent("longp", prompt_len=80, max_tokens=2))

    async def scenario():
        instance, ready = server.lifecycle.launch("longp")
        await ready
        while server.metrics.disagg_pages_streamed == 0:
            assert sim.now < 60.0, "prefill never streamed a page"
            await sim.sleep(0.002)
        assert server.metrics.disagg_handoffs == 0
        assert server.service().transfer.staged_pages(instance.instance_id) > 0
        server.lifecycle.abort(instance, "mid-stream abort")
        await server.lifecycle.wait_for_completion(instance)
        return instance

    instance = sim.run_until_complete(scenario())
    assert instance.status == "terminated"
    assert server.metrics.disagg_pages_streamed > 0
    assert server.metrics.disagg_handoffs == 0
    check_invariants(server)


def _two_queue_program(prompt_b_len):
    """Context A samples while context B's chunked prefill is still in
    flight — the raw-api fill on B is issued but deliberately not awaited
    before A's first sample, so the sample retires mid-chunk."""

    async def main(ctx):
        a = Context(ctx, sampling=SamplingParams())
        await a.fill("context a warms up first. ")
        b = Context(ctx, sampling=SamplingParams())
        tokens = ctx.tokenize(b.queue, "tok " * prompt_b_len + "context b. ")
        positions = list(range(len(tokens)))
        b._ensure_capacity(len(tokens))
        prompt_embeds = ctx.alloc_emb(b.queue, len(tokens))
        ctx.embed_txt(b.queue, tokens, positions, prompt_embeds)
        ctx.forward(
            b.queue,
            ikv=b._pages,
            iemb=prompt_embeds,
            okv=b._writable_pages(),
            oemb=[b._gen_emb],
        )
        ctx.dealloc_emb(b.queue, prompt_embeds)
        # B's forward is now slicing through the chunked-prefill path.
        # This sample completes while B still has residual chunks queued:
        # the handoff must be refused, not taken mid-prefill.
        first = await a.generate_once()
        await ctx.synchronize(b.queue)
        b.token_ids.extend(tokens)
        b._visible.extend([True] * len(tokens))
        b._record_written(len(tokens))
        b._has_hidden = True
        second = await a.generate_once()
        third = await b.generate_once()
        a.free()
        b.free()
        return [first, second, third]

    return InferletProgram(name="midchunk", main=main)


def _run_mid_chunk(disagg):
    sim = Simulator(seed=5)
    if disagg:
        server = build_server(sim, devices=2)
    else:
        config = PieConfig(
            gpu=GpuConfig(num_kv_pages=72, num_devices=2, host_kv_pages=32),
            control=ControlLayerConfig(
                prefix_cache=True,
                chunked_prefill=True,
                prefill_chunk_tokens=8,
                max_batch_tokens=16,
            ),
        )
        server = PieServer(sim, config=config)
    server.register_program(_two_queue_program(prompt_b_len=60))
    result = sim.run_until_complete(server.run_inferlet("midchunk"))
    return server, result


def test_mid_chunk_sample_defers_handoff_and_preserves_order():
    """A sample retiring while another queue of the same inferlet still
    has prefill chunks in flight is NOT a safe handoff point: the
    transfer must refuse (counted as a failure), let the residual chunks
    retire in order on the source shard, and migrate at the next sample.
    The deferred handoff preserves residual-chunk ordering, so the tokens
    — including the one sampled from context B *after* migration — are
    bit-identical to a run without disaggregation."""
    server, result = _run_mid_chunk(disagg=True)
    assert result.status == "finished"
    metrics = server.metrics
    assert metrics.disagg_handoff_failures >= 1, "mid-chunk handoff was not refused"
    assert metrics.disagg_handoffs == 1
    assert metrics.prefill_chunks_dispatched > 0
    # Exactly one decode row ran on the prefill shard: the append of the
    # first sampled token, issued in the refused-handoff window.  The
    # second sample retires quiescent, migrates, and everything after —
    # including context B's decode — runs on the decode shard.
    prefill_rows = [
        shard.scheduler.stats.decode_rows_dispatched
        for shard in server.service().shards
        if shard.role == "prefill"
    ]
    assert sum(prefill_rows) == 1
    check_invariants(server)

    baseline_server, baseline = _run_mid_chunk(disagg=False)
    assert baseline.status == "finished"
    assert result.result == baseline.result
    assert baseline_server.metrics.disagg_handoffs == 0
