"""Meta-test: tests/ and benchmarks/ must not share file basenames.

Neither directory has an ``__init__.py``, so pytest imports their files as
top-level modules by basename.  A duplicated basename (for example
``tests/test_prefix_cache.py`` next to ``benchmarks/test_prefix_cache.py``)
makes collection fail with an import-mismatch error — but only when both
directories are collected together, which is exactly how the tier-1 suite
runs.  Catch it here with a pointed message instead.
"""

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_no_basename_shared_between_tests_and_benchmarks():
    tests = {p.name for p in (REPO_ROOT / "tests").glob("*.py")}
    benchmarks = {p.name for p in (REPO_ROOT / "benchmarks").glob("*.py")}
    shared = (tests & benchmarks) - {"conftest.py"}
    assert not shared, (
        f"basename(s) {sorted(shared)} exist in BOTH tests/ and benchmarks/. "
        "Neither directory is a package, so pytest imports test files as "
        "top-level modules by basename; duplicates break collection of the "
        "combined tier-1 run (PYTHONPATH=src python -m pytest). Rename one "
        "of the clashing files."
    )
