"""Invariants of chunked prefill: ordering, accounting, abort safety.

Three properties keep token-budget slicing from being an accounting trick:

* the residual of a sliced forward *stays at its queue head* — commands
  behind it (same queue) never dispatch early, synchronize barriers keep
  counting one command, and the caller's future resolves exactly once,
  when the final slice completes;
* aborting an inferlet mid-chunk releases its partially committed KV
  pages exactly once (the pool's free-validation would raise on a double
  free) and leaves both pools fully conserved;
* slicing changes *timing only*: a mixed fleet generates bit-identical
  tokens with chunking on and off.
"""

import pytest

from repro.bench.runners import make_pie_setup
from repro.core import InferletProgram
from repro.core.command_queue import Command
from repro.core.config import ControlLayerConfig, PieConfig, SchedulerConfig
from repro.core.scheduler import BatchScheduler
from repro.gpu.config import GpuConfig
from repro.gpu.device import SimDevice
from repro.sim import Simulator
from repro.support import Context, SamplingParams

CHUNK = 8
BUDGET = 10


class StubCost:
    prefill_ms_per_token = 0.05


class StubCostModel:
    cost = StubCost()


class StubHandlers:
    """Execution log standing in for ApiHandlers in scheduler-level tests."""

    cost_model = StubCostModel()

    def __init__(self, fail_on_slice=None):
        self.log = []  # (inferlet_id, iemb slice, had_oemb)
        self.fail_on_slice = fail_on_slice

    def batch_cost_seconds(self, kind, commands):
        return 0.001 * sum(max(1, c.input_tokens) for c in commands)

    def execute_batch(self, kind, commands):
        results = []
        for c in commands:
            iemb = list(c.payload.get("iemb", []))
            self.log.append((c.inferlet_id, iemb, bool(c.payload.get("oemb"))))
            if self.fail_on_slice is not None and iemb and iemb[0] == self.fail_on_slice:
                results.append(RuntimeError("injected slice failure"))
            else:
                results.append(len(iemb) or 1)
        return results


def _scheduler(sim, handlers):
    return BatchScheduler(
        sim,
        SimDevice(sim),
        handlers,
        SchedulerConfig(),
        GpuConfig(max_batch_rows=64),
        ControlLayerConfig(
            chunked_prefill=True,
            prefill_chunk_tokens=CHUNK,
            max_batch_tokens=BUDGET,
        ),
    )


def _forward(sim, owner, tokens, oemb=(), writes=frozenset()):
    return Command(
        kind="forward",
        inferlet_id=owner,
        payload={
            "iemb": list(tokens),
            "okv": [],
            "oemb": list(oemb),
            "mask": None,
            "okv_offset": None,
        },
        future=sim.create_future(name=f"fwd:{owner}"),
        issue_time=sim.now,
        input_tokens=len(tokens),
        writes=writes,
    )


def test_residual_keeps_queue_head_order_across_interleaved_submits():
    sim = Simulator(seed=1)
    handlers = StubHandlers()
    scheduler = _scheduler(sim, handlers)
    queue_a = scheduler.create_queue("A", model="m", owner="a")
    scheduler.create_queue("B", model="m", owner="b")

    long_cmd = _forward(sim, "a", list(range(30)), oemb=["h"])
    follow_up = _forward(sim, "a", [990])
    barrier = sim.create_future(name="barrier")
    scheduler.submit("A", long_cmd)
    scheduler.submit("A", follow_up)

    head_checks = []

    def check_head():
        # While the long forward still has tokens left, it must *be* the
        # queue head object (not a copy, not re-ordered behind follow_up).
        if long_cmd.input_tokens > 0 and queue_a.pending_count:
            head_checks.append(queue_a._pending[0] is long_cmd)

    # Interleave decode submissions from another queue while slices drain.
    for step in range(6):
        sim.schedule(0.002 + step * 0.004, check_head)
        sim.schedule(
            0.003 + step * 0.004,
            lambda: scheduler.submit("B", _forward(sim, "b", [500 + step])),
        )
    sim.schedule(0.001, lambda: queue_a.synchronize(barrier))
    resolution_order = []
    long_cmd.future.add_done_callback(lambda _f: resolution_order.append("long"))
    barrier.add_done_callback(lambda _f: resolution_order.append("barrier"))
    follow_up.future.add_done_callback(lambda _f: resolution_order.append("follow_up"))

    sim.run()

    assert head_checks and all(head_checks)
    # The long forward was sliced under the token budget...
    slices = [entry for entry in handlers.log if entry[0] == "a" and entry[1][:1] != [990]]
    assert len(slices) > 1
    # ...its tokens executed in order, with no token lost or duplicated...
    executed = [token for _, tokens, _ in slices for token in tokens]
    assert executed == list(range(30))
    # ...only the final slice carried the output-hidden slots...
    assert [had_oemb for _, _, had_oemb in slices] == [False] * (len(slices) - 1) + [True]
    # ...and the future resolved exactly once, before the barrier and the
    # queued follow-up (which dispatched only after the residual drained).
    assert resolution_order[0] == "long"
    assert set(resolution_order) == {"long", "barrier", "follow_up"}
    assert scheduler.stats.prefill_chunks_dispatched == len(slices) - 1
    assert long_cmd.future.result() is not None


def test_failing_slice_fails_the_whole_forward_and_stops_slicing():
    sim = Simulator(seed=1)
    handlers = StubHandlers(fail_on_slice=8)  # second slice starts at token 8
    scheduler = _scheduler(sim, handlers)
    queue = scheduler.create_queue("A", model="m", owner="a")
    long_cmd = _forward(sim, "a", list(range(30)), oemb=["h"])
    barrier = sim.create_future(name="barrier")
    scheduler.submit("A", long_cmd)
    sim.schedule(0.0005, lambda: queue.synchronize(barrier))
    sim.run()
    assert long_cmd.future.done()
    assert isinstance(long_cmd.future.exception(), RuntimeError)
    # The residual was dropped: no slice past the failed one ever executed,
    # the queue drained, and the barrier counting the command resolved.
    executed = [token for _, tokens, _ in handlers.log for token in tokens]
    assert max(executed) < 16  # slices are 8 tokens; nothing after the failure
    assert queue.pending_count == 0
    assert barrier.done()


def test_abort_mid_chunk_releases_partially_committed_kv_exactly_once():
    """Terminate an inferlet while its prefill is mid-slice: the partially
    committed pages must be released exactly once (the pool validates
    frees) and both pools must conserve fully."""
    sim, server = make_pie_setup(
        seed=2,
        with_tools=False,
        chunked_prefill=True,
        prefill_chunk_tokens=32,
        max_batch_tokens=48,
    )

    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill([i % 250 for i in range(600)])
        await context.generate_until(max_tokens=2)
        context.free()
        return "done"

    server.register_program(InferletProgram(name="doomed", main=main))
    instance, _ready = server.launch("doomed")

    def kill():
        if not instance.finished:
            server.controller.terminate_inferlet(instance, reason="test abort")

    # 600 tokens in 32-token slices at ~17+ ms per lone batch: 50 ms in,
    # several slices have committed and the residual is still pending.
    sim.schedule(0.05, kill)
    sim.run_until_complete(server.lifecycle.wait_for_completion(instance))
    sim.run()  # drain in-flight batches and deferred callbacks

    assert instance.status == "terminated"
    stats = server.cluster_stats().combined
    assert stats.prefill_chunks_dispatched > 0  # the abort really hit mid-stream
    resources = server.service().resources
    assert resources.kv_pages_free == server.config.gpu.num_kv_pages
    assert resources.embeds_free == server.config.gpu.num_embed_slots


def test_chunked_cost_model_is_never_a_discount():
    """``chunked_prefill_ms`` is the reference oracle for chunk charging:
    it must equal the slice-by-slice ``forward_batch_cost`` the scheduler
    actually pays, and can never undercut the monolithic prefill."""
    from repro.gpu.kernels import ForwardRow, KernelCostModel
    from repro.model.registry import ModelRegistry

    config = ModelRegistry(["llama-sim-1b"]).get("llama-sim-1b").config
    model = KernelCostModel(config)
    for n_tokens, chunk in [(512, 64), (1000, 128), (300, 300), (97, 16)]:
        assert model.chunked_prefill_ms(n_tokens, chunk) >= model.prefill_ms(n_tokens) - 1e-9
    sliced = sum(
        model.forward_batch_cost(
            [ForwardRow(n_input_tokens=min(64, 512 - done), context_tokens=done)]
        )
        for done in range(0, 512, 64)
    )
    assert model.chunked_prefill_ms(512, 64) == pytest.approx(sliced * 1e3)


@pytest.mark.parametrize("policy", ["adaptive", "t_only"])
def test_interleaved_fleet_generates_identical_tokens_on_and_off(policy):
    """Chunking must change timing only: same seeds, same tokens."""

    def build_programs():
        def summarizer(index):
            async def main(ctx):
                context = Context(ctx, sampling=SamplingParams())
                await context.fill([(index + i) % 250 for i in range(300)])
                await context.generate_until(max_tokens=3)
                context.free()
                return list(context.generated_ids)

            return InferletProgram(name=f"s{index}", main=main)

        def chat(index):
            async def main(ctx):
                context = Context(ctx, sampling=SamplingParams())
                await context.fill(f"chat {index}? ")
                await context.generate_until(max_tokens=6)
                context.free()
                return list(context.generated_ids)

            return InferletProgram(name=f"c{index}", main=main)

        return [summarizer(i) for i in range(2)] + [chat(i) for i in range(4)]

    def run(chunked):
        config = PieConfig(
            scheduler=SchedulerConfig(policy=policy),
            control=ControlLayerConfig(
                chunked_prefill=chunked,
                prefill_chunk_tokens=16,
                max_batch_tokens=24,
            ),
        )
        sim, server = make_pie_setup(seed=11, with_tools=False, config=config)
        programs = build_programs()
        for program in programs:
            server.register_program(program)

        async def one(name, delay):
            await sim.sleep(delay)
            return await server.run_inferlet(name)

        async def run_all():
            tasks = [
                sim.create_task(one(p.name, 0.005 * i)) for i, p in enumerate(programs)
            ]
            return await sim.gather(tasks)

        results = sim.run_until_complete(run_all())
        stats = server.cluster_stats().combined
        return (
            [(r.status, r.result) for r in results],
            stats.prefill_chunks_dispatched,
        )

    off_results, off_chunks = run(False)
    on_results, on_chunks = run(True)
    assert off_chunks == 0
    assert on_chunks > 0
    assert on_results == off_results
