"""Scheduler queue-index invariants (owner map, readiness set, pending total).

The batch scheduler used to answer ``queues_for_owner``, ``total_pending``
and ``_dispatchable_queues`` by scanning every command queue — O(all
queues) per dispatch, per exit check and per telemetry sample, which melts
at tens of thousands of mostly-idle queues.  The indexes replacing those
scans are incrementally maintained across every queue-lifecycle path
(create / remove / detach / adopt) and every pending-count mutation, so the
tests here hold them to two standards:

* **Oracle consistency** — under seeded random interleavings of queue
  lifecycle, submit, dispatch and suspend operations, each index answer is
  bit-identical (content *and* order) to the brute-force scan it replaced.
* **No full iteration** — with 10k idle queues installed, the submit /
  dispatch / notify_resumed / telemetry paths never iterate the queue
  table at all (enforced by poisoning the table's iteration methods).
"""

import numpy as np
import pytest

from repro.core.command_queue import Command, CommandQueue
from repro.core.config import ControlLayerConfig, SchedulerConfig
from repro.core.metrics import SystemMetrics
from repro.core.router import aggregate_scheduler_stats
from repro.core.scheduler import BatchScheduler, SchedulerStats
from repro.gpu.config import GpuConfig
from repro.gpu.device import SimDevice
from repro.sim import Simulator


class StubCost:
    prefill_ms_per_token = 0.05


class StubCostModel:
    cost = StubCost()


class StubHandlers:
    cost_model = StubCostModel()

    def batch_cost_seconds(self, kind, commands):
        return 0.001 * len(commands)

    def execute_batch(self, kind, commands):
        return [1] * len(commands)


def _scheduler(sim, policy="adaptive", metrics=None):
    return BatchScheduler(
        sim,
        SimDevice(sim),
        StubHandlers(),
        SchedulerConfig(policy=policy),
        GpuConfig(max_batch_rows=16),
        ControlLayerConfig(),
        metrics=metrics,
    )


def _command(sim, owner):
    return Command(
        kind="forward",
        inferlet_id=owner,
        payload={"iemb": [1], "okv": [], "oemb": [], "mask": None, "okv_offset": None},
        future=sim.create_future(),
        issue_time=sim.now,
        input_tokens=1,
    )


def _assert_indexes_match_scan(scheduler):
    """Every index answer must equal the brute-force scan it replaced."""
    queues = scheduler._queues
    # Pending total == full scan.
    assert scheduler.total_pending == sum(q.pending_count for q in queues.values())
    # Readiness set membership == scan for pending queues.
    assert set(scheduler._ready) == {
        key for key, queue in queues.items() if queue.pending_count
    }
    # Dispatchable iteration order == the old full scan's insertion-order
    # walk, restricted to queues that could contribute work.
    guard = scheduler._dispatch_guard
    expected = [
        queue
        for queue in queues.values()
        if queue.pending_count and (guard is None or not guard(queue.owner))
    ]
    assert scheduler._dispatchable_queues() == expected
    # Owner index == per-owner filtered scan, in insertion order.
    owners = {queue.owner for queue in queues.values()}
    for owner in owners:
        assert scheduler.queues_for_owner(owner) == [
            queue for queue in queues.values() if queue.owner == owner
        ]
    for owner in scheduler._owner_queues:
        assert owner in owners  # no stale owner entries survive removal


class TestIndexConsistency:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_interleavings_match_brute_force(self, seed):
        """Seeded random create/remove/detach/adopt/submit/suspend/dispatch
        interleavings across two schedulers: after every operation, each
        index agrees with the scan-based oracle on both schedulers."""
        sim = Simulator(seed=seed)
        rng = np.random.default_rng(seed)
        left = _scheduler(sim)
        right = _scheduler(sim)
        suspended = set()
        for scheduler in (left, right):
            scheduler.set_dispatch_guard(lambda owner: owner in suspended)
        owners = [f"owner{i}" for i in range(6)]
        next_key = [0]

        def op_create(scheduler, other):
            key = f"q{next_key[0]}"
            next_key[0] += 1
            scheduler.create_queue(key, model="m", owner=str(rng.choice(owners)))

        def op_remove(scheduler, other):
            if scheduler._queues:
                key = list(scheduler._queues)[rng.integers(len(scheduler._queues))]
                scheduler.remove_queue(key)

        def op_handoff(scheduler, other):
            if scheduler._queues:
                key = list(scheduler._queues)[rng.integers(len(scheduler._queues))]
                other.adopt_queue(scheduler.detach_queue(key))

        def op_submit(scheduler, other):
            if scheduler._queues:
                key = list(scheduler._queues)[rng.integers(len(scheduler._queues))]
                queue = scheduler.get_queue(key)
                scheduler.submit(key, _command(sim, queue.owner))

        def op_suspend(scheduler, other):
            owner = str(rng.choice(owners))
            if owner in suspended:
                suspended.discard(owner)
                scheduler.notify_resumed()
            else:
                suspended.add(owner)

        def op_run(scheduler, other):
            sim.run(until=sim.now + 0.05)

        operations = [op_create, op_remove, op_handoff, op_submit, op_suspend, op_run]
        weights = np.array([0.3, 0.1, 0.1, 0.3, 0.1, 0.1])
        for _ in range(400):
            op = operations[rng.choice(len(operations), p=weights)]
            first, second = (left, right) if rng.random() < 0.5 else (right, left)
            op(first, second)
            _assert_indexes_match_scan(left)
            _assert_indexes_match_scan(right)
        sim.run()
        _assert_indexes_match_scan(left)
        _assert_indexes_match_scan(right)

    def test_recreated_key_sorts_by_recreation_order(self):
        """Removing and re-creating a key moves it to the end of dispatch
        order, exactly as re-inserting into ``self._queues`` used to."""
        sim = Simulator()
        scheduler = _scheduler(sim)
        scheduler.create_queue("a", model="m", owner="x")
        scheduler.create_queue("b", model="m", owner="x")
        scheduler.remove_queue("a")
        scheduler.create_queue("a", model="m", owner="x")
        scheduler.submit("a", _command(sim, "x"))
        scheduler.submit("b", _command(sim, "x"))
        assert [q.key for q in scheduler._dispatchable_queues()] == ["b", "a"]

    def test_detached_queue_stops_feeding_old_scheduler(self):
        """A push after detach must not leak into the origin's counters."""
        sim = Simulator()
        left = _scheduler(sim)
        right = _scheduler(sim)
        left.create_queue("q", model="m", owner="x")
        queue = left.detach_queue("q")
        assert left.total_pending == 0
        queue.push(_command(sim, "x"))
        assert left.total_pending == 0
        right.adopt_queue(queue)
        assert right.total_pending == 1
        assert [q.key for q in right._dispatchable_queues()] == ["q"]


class _NoIterDict(dict):
    """A queue table that forbids whole-table iteration.

    Point lookups (``[]``, ``.get``, ``in``) stay legal — the indexes exist
    precisely so that the hot paths never need anything else."""

    def _poisoned(self, *args, **kwargs):
        raise AssertionError("hot path iterated the full queue table")

    __iter__ = _poisoned
    keys = _poisoned
    values = _poisoned
    items = _poisoned


class TestNoFullIteration:
    def test_submit_dispatch_under_10k_idle_queues(self):
        """With 10k idle queues, submit -> dispatch -> completion plus
        notify_resumed and the telemetry read must never iterate the queue
        table; per-event work depends on live work only."""
        sim = Simulator()
        scheduler = _scheduler(sim)
        for i in range(10_000):
            scheduler.create_queue(f"idle{i}", model="m", owner=f"tenant{i % 100}")
        scheduler.create_queue("hot", model="m", owner="hot-owner")
        # Poison full-table iteration from here on.
        scheduler._queues = _NoIterDict(scheduler._queues)

        for _ in range(5):
            scheduler.submit("hot", _command(sim, "hot-owner"))
        assert scheduler.total_pending == 5  # telemetry path
        scheduler.notify_resumed()  # swap-resume poke
        assert scheduler.queues_for_owner("hot-owner")[0].key == "hot"
        sim.run()  # adaptive dispatch + batch completion
        assert scheduler.total_pending == 0
        assert scheduler.stats.commands_dispatched == 5

    def test_eager_policy_under_idle_queues(self):
        sim = Simulator()
        scheduler = _scheduler(sim, policy="eager")
        for i in range(1000):
            scheduler.create_queue(f"idle{i}", model="m", owner="idle")
        scheduler.create_queue("hot", model="m", owner="hot-owner")
        scheduler._queues = _NoIterDict(scheduler._queues)
        scheduler.submit("hot", _command(sim, "hot-owner"))
        sim.run()
        assert scheduler.stats.commands_dispatched == 1


class TestCommandsDropped:
    def test_remove_queue_counts_pending_drops(self):
        sim = Simulator()
        metrics = SystemMetrics()
        scheduler = _scheduler(sim, metrics=metrics)
        scheduler.create_queue("q", model="m", owner="x")
        for _ in range(3):
            scheduler.submit("q", _command(sim, "x"))
        # Remove before the scheduled adaptive dispatch ever runs.
        scheduler.remove_queue("q")
        assert scheduler.stats.commands_dropped == 3
        assert metrics.commands_dropped == 3
        # Dispatched work is not "dropped": an empty-queue removal adds 0.
        scheduler.create_queue("p", model="m", owner="x")
        scheduler.submit("p", _command(sim, "x"))
        sim.run()
        scheduler.remove_queue("p")
        assert scheduler.stats.commands_dropped == 3

    def test_cluster_aggregation_sums_drops(self):
        shard_a = SchedulerStats(commands_dropped=2)
        shard_b = SchedulerStats(commands_dropped=5)
        total = aggregate_scheduler_stats([shard_a, shard_b])
        assert total.commands_dropped == 7
