"""Tests for the baseline monolithic serving systems."""

import pytest

from repro.baselines import (
    BaselineClient,
    GenerationRequest,
    LmqlLikeServer,
    MonolithicEngine,
    SamplingConfig,
    SglangLikeServer,
    StreamingLlmServer,
    VllmLikeServer,
)
from repro.baselines.block_manager import BlockManager
from repro.baselines.radix_tree import RadixTree
from repro.core.messaging import ExternalServices
from repro.errors import BaselineError
from repro.gpu import GpuConfig
from repro.gpu.memory import KvPageStore
from repro.model import get_model_config
from repro.sim import Simulator
from repro.sim.latency import ConstantLatency

from tests.test_core_end_to_end import reference_greedy_completion


@pytest.fixture()
def sim():
    return Simulator(seed=5)


class TestBlockManager:
    def make(self, enable=True, pages=64):
        store = KvPageStore(get_model_config("llama-sim-1b"), num_pages=pages)
        return BlockManager(store, enable_prefix_caching=enable)

    def test_no_cache_when_disabled(self):
        manager = self.make(enable=False)
        pages, cached = manager.match_prefix(list(range(64)))
        assert pages == [] and cached == 0

    def test_prefix_reuse_roundtrip(self):
        manager = self.make()
        tokens = list(range(48))  # 3 full pages of 16
        pages = manager.allocate_pages(3)
        manager.register_prefix(tokens, pages)
        matched, cached = manager.match_prefix(tokens + [99, 100])
        assert matched == pages
        assert cached == 48

    def test_partial_prefix_match(self):
        manager = self.make()
        tokens = list(range(32))
        pages = manager.allocate_pages(2)
        manager.register_prefix(tokens, pages)
        different_tail = list(range(16)) + list(range(100, 116))
        matched, cached = manager.match_prefix(different_tail)
        assert cached == 16
        assert matched == pages[:1]

    def test_release_keeps_cached_pages(self):
        manager = self.make()
        tokens = list(range(16))
        pages = manager.allocate_pages(2)
        manager.register_prefix(tokens, pages[:1])
        manager.release_pages(pages, cached_page_ids=[])
        # Cached page stays allocated, the other page is freed.
        assert manager.store.num_allocated == 1

    def test_eviction_under_pressure(self):
        manager = self.make(pages=4)
        tokens = list(range(32))
        pages = manager.allocate_pages(2)
        manager.register_prefix(tokens, pages)
        manager.release_pages(pages, cached_page_ids=[])
        # Cache holds 2 unreferenced pages; a big allocation evicts them.
        new_pages = manager.allocate_pages(4)
        assert len(new_pages) == 4

    def test_pages_needed(self):
        manager = self.make()
        assert manager.pages_needed_for(0) == 0
        assert manager.pages_needed_for(1) == 1
        assert manager.pages_needed_for(16) == 1
        assert manager.pages_needed_for(17) == 2


class TestRadixTree:
    def test_insert_and_match(self):
        tree = RadixTree(page_size=4)
        tokens = [1, 2, 3, 4, 5, 6, 7, 8]
        tree.insert(tokens, [10, 11])
        pages, matched = tree.match_prefix(tokens + [9])
        assert pages == [10, 11]
        assert matched == 8

    def test_partial_match_page_aligned(self):
        tree = RadixTree(page_size=4)
        tree.insert([1, 2, 3, 4, 5, 6, 7, 8], [10, 11])
        pages, matched = tree.match_prefix([1, 2, 3, 4, 9, 9, 9, 9])
        assert pages == [10]
        assert matched == 4

    def test_branching_prefixes_share_ancestor(self):
        tree = RadixTree(page_size=2)
        tree.insert([1, 2, 3, 4], [20, 21])
        adopted = tree.insert([1, 2, 5, 6], [20, 22])
        assert adopted == 1  # shared first chunk reused
        assert tree.cached_pages() == 3

    def test_eviction_prefers_lru_leaf(self):
        tree = RadixTree(page_size=2)
        tree.insert([1, 2, 3, 4], [30, 31])
        tree.insert([1, 2, 5, 6], [30, 32])
        tree.match_prefix([1, 2, 5, 6])  # refresh second branch
        tree.release_path([1, 2, 5, 6], 4)
        evicted = tree.evict_lru_leaf()
        assert evicted == [31]

    def test_refcounted_path_not_evicted(self):
        tree = RadixTree(page_size=2)
        tree.insert([1, 2], [40])
        tree.match_prefix([1, 2])  # holds a reference
        assert tree.evict_lru_leaf() is None
        tree.release_path([1, 2], 2)
        assert tree.evict_lru_leaf() == [40]


class TestMonolithicEngine:
    def test_greedy_matches_reference(self, sim):
        engine = MonolithicEngine(sim)
        output = sim.run_until_complete(
            engine.generate("Hi", SamplingConfig(max_tokens=6))
        )
        assert output.text == reference_greedy_completion("Hi", 6)
        assert output.finish_reason == "length"

    def test_latency_matches_tpot(self, sim):
        engine = MonolithicEngine(sim)
        config = get_model_config("llama-sim-1b")
        output = sim.run_until_complete(
            engine.generate("Hello", SamplingConfig(max_tokens=10))
        )
        # 1 prefill + 9 decode steps, each >= decode_ms_base.
        assert output.latency >= 10 * config.cost.decode_ms_base / 1e3
        assert output.latency <= 10 * (config.cost.decode_ms_base + 5) / 1e3 + 0.05

    def test_continuous_batching_shares_steps(self, sim):
        engine = MonolithicEngine(sim)

        async def run_many():
            tasks = [
                sim.create_task(engine.generate(f"prompt {i}", SamplingConfig(max_tokens=8)))
                for i in range(8)
            ]
            return await sim.gather(tasks)

        outputs = sim.run_until_complete(run_many())
        assert len(outputs) == 8
        assert engine.stats.mean_batch_size > 1.5

    def test_prefix_caching_avoids_recompute(self, sim):
        engine = MonolithicEngine(sim, enable_prefix_caching=True)
        prompt = "A" * 64  # four full pages

        async def scenario():
            first = await engine.generate(prompt, SamplingConfig(max_tokens=4))
            second = await engine.generate(prompt, SamplingConfig(max_tokens=4))
            return first, second

        first, second = sim.run_until_complete(scenario())
        assert first.cached_prompt_tokens == 0
        assert second.cached_prompt_tokens >= 48
        assert second.text == first.text
        assert second.latency < first.latency

    def test_radix_reuse_across_branches(self, sim):
        engine = MonolithicEngine(sim, use_radix=True)
        shared = "Common prefix shared across branches. " * 2

        async def scenario():
            await engine.generate(shared + "branch one", SamplingConfig(max_tokens=4))
            return await engine.generate(shared + "branch two", SamplingConfig(max_tokens=4))

        second = sim.run_until_complete(scenario())
        assert second.cached_prompt_tokens >= 32

    def test_ngram_speculation_reduces_steps_and_matches_output(self, sim):
        prompt = "abcabcabcabcabc"
        baseline_engine = MonolithicEngine(sim)
        baseline = sim.run_until_complete(
            baseline_engine.generate(prompt, SamplingConfig(max_tokens=12))
        )
        sim2 = Simulator(seed=5)
        spec_engine = MonolithicEngine(sim2, enable_ngram_speculation=True)
        spec = sim2.run_until_complete(
            spec_engine.generate(prompt, SamplingConfig(max_tokens=12))
        )
        assert spec.text == baseline.text
        assert spec.steps <= baseline.steps

    def test_stop_string(self, sim):
        engine = MonolithicEngine(sim)
        output = sim.run_until_complete(
            engine.generate("Hello", SamplingConfig(max_tokens=64, stop_strings=("e",)))
        )
        assert output.finish_reason in ("stop", "length")
        if output.finish_reason == "stop":
            assert output.text.endswith("e")

    def test_kv_pages_released_after_completion(self, sim):
        engine = MonolithicEngine(sim)
        sim.run_until_complete(engine.generate("Hello", SamplingConfig(max_tokens=4)))
        assert engine.memory.kv_pages.num_allocated == 0

    def test_invalid_sampling_rejected(self):
        with pytest.raises(BaselineError):
            SamplingConfig(max_tokens=0)
        with pytest.raises(BaselineError):
            SamplingConfig(temperature=-1)


class TestServers:
    def test_vllm_like_generate(self, sim):
        server = VllmLikeServer(sim)
        output = sim.run_until_complete(server.generate("Hi", SamplingConfig(max_tokens=5)))
        assert output.text == reference_greedy_completion("Hi", 5)

    def test_vllm_beam_search_returns_best(self, sim):
        server = VllmLikeServer(sim)
        result = sim.run_until_complete(server.generate_beam("Hi", beam_width=3, max_tokens=4))
        assert len(result.token_ids) == 4
        assert result.logprob <= 0.0

    def test_sglang_fork_generate_hits_radix(self, sim):
        server = SglangLikeServer(sim)
        prompt = "Shared reasoning prompt used by every branch. " * 2

        async def scenario():
            return await server.fork_generate(
                prompt, ["branch A", "branch B", "branch C"], SamplingConfig(max_tokens=4)
            )

        outputs = sim.run_until_complete(scenario())
        assert len(outputs) == 3
        assert server.stats.total_cached_prompt_tokens > 0

    def test_streamingllm_serialises_requests(self, sim):
        server = StreamingLlmServer(sim)

        async def scenario():
            tasks = [
                sim.create_task(server.generate(f"p{i}", SamplingConfig(max_tokens=4)))
                for i in range(3)
            ]
            return await sim.gather(tasks)

        outputs = sim.run_until_complete(scenario())
        assert len(outputs) == 3
        # One request at a time -> every engine step has batch size 1.
        assert server.stats.mean_batch_size == pytest.approx(1.0)

    def test_lmql_like_is_slower_than_vllm(self):
        def run(server_cls):
            sim = Simulator(seed=2)
            server = server_cls(sim)
            sim.run_until_complete(server.generate("Hello", SamplingConfig(max_tokens=8)))
            return sim.now

        assert run(LmqlLikeServer) > run(VllmLikeServer)


class TestBaselineClient:
    def test_generation_pays_round_trip(self, sim):
        server = VllmLikeServer(sim)
        client = BaselineClient(sim, server, rtt_ms=20.0)
        output = sim.run_until_complete(client.generate("Hi", SamplingConfig(max_tokens=2)))
        assert output.text
        assert sim.now >= 0.020

    def test_agent_loop_counts_round_trips_and_tools(self, sim):
        external = ExternalServices(sim)
        external.register("http://tool/api", lambda payload: "observation", ConstantLatency(0.05))
        server = VllmLikeServer(sim)
        client = BaselineClient(sim, server, external=external, rtt_ms=20.0)

        async def scenario():
            return await client.run_agent_loop(
                "You are an agent.", "http://tool/api", n_interactions=3, tokens_per_turn=4
            )

        outputs = sim.run_until_complete(scenario())
        assert len(outputs) == 4            # 3 interactions + final answer
        assert client.generation_requests == 4
        assert client.tool_calls == 3
        assert external.total_calls() == 3
