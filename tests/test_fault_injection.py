"""Chaos-plane regression: injection, failover, retry and brownout.

Covers the robustness contract end to end:

* :class:`FaultPlan` grammar validation and :class:`RetryPolicy`
  determinism (unit level);
* ≥100 seeded chaos interleavings (generated plans) against the live
  cluster with **zero pool leaks** — every KV page, embed slot and host
  slot comes home no matter which faults fired;
* failover places only on healthy shards: after a crash is detected no
  batch executes on the dead shard and fresh launches land elsewhere;
* a fully host-tier-resident inferlet is re-materialized on a healthy
  shard and emits **exactly** the tokens of the crash-free run — no
  duplicate and no lost tokens;
* chaos off is structurally inert (no injector, no health service, no
  probe on the router);
* the brownout controller fires on an interactive burn-rate alert,
  sheds batch admission with ``reason="brownout"``, widens the chunked
  prefill budgets, and restores both once the alert clears.
"""

import pytest

from repro.core import InferletProgram, PieServer, TenantSpec
from repro.core.config import ControlLayerConfig, PieConfig
from repro.core.retry import RetryPolicy
from repro.errors import (
    AdmissionRejectedError,
    FaultInjectedError,
    InferletTerminated,
    ReproError,
    RetriesExhaustedError,
)
from repro.gpu.config import GpuConfig
from repro.sim import FaultPlan, Simulator
from repro.sim.latency import ConstantLatency
from repro.support import Context, SamplingParams

TOOL_URL = "http://tools/archive"
PROMPT = "System: chaos fleet agent; answer tersely and deterministically. "


# -- unit: the fault plan grammar -------------------------------------------


class TestFaultPlan:
    def test_entries_are_time_sorted(self):
        plan = FaultPlan([("shard_crash", 0.9, 1), ("link_flap", 0.1, 0.2)])
        assert [entry[0] for entry in plan] == ["link_flap", "shard_crash"]

    @pytest.mark.parametrize(
        "entry",
        [
            ("meteor_strike", 0.1),
            ("shard_crash", -1.0, 0),
            ("shard_crash", 0.1, 9),
            ("shard_crash", 0.1),
            ("shard_slowdown", 0.1, 0, 0.5, 1.0),  # multiplier < 1
            ("shard_slowdown", 0.1, 0, 2.0, 0.0),  # zero duration
            ("link_flap", 0.1),
            ("link_spike", 0.1, -0.001, 1.0),
            ("tool_error", 0.1, 0.0),
        ],
    )
    def test_validation_rejects_malformed_entries(self, entry):
        with pytest.raises(ReproError):
            FaultPlan.validate([entry], num_shards=2)

    def test_generate_is_a_pure_function_of_its_seed(self):
        a = FaultPlan.generate(seed=5, horizon_s=2.0, num_shards=4, n_faults=6)
        b = FaultPlan.generate(seed=5, horizon_s=2.0, num_shards=4, n_faults=6)
        assert a == b
        assert len(a) == 6
        assert a != FaultPlan.generate(seed=6, horizon_s=2.0, num_shards=4, n_faults=6)

    def test_generate_respects_protected_shards(self):
        for seed in range(20):
            plan = FaultPlan.generate(
                seed=seed, horizon_s=1.0, num_shards=2, protect_shards=(0,)
            )
            for entry in plan:
                if entry[0] in ("shard_crash", "shard_slowdown"):
                    assert entry[2] == 1


# -- unit: deterministic exponential backoff --------------------------------


def retry_control(**overrides):
    fields = dict(
        faults=True,
        retry_max_attempts=4,
        retry_base_ms=10.0,
        retry_multiplier=2.0,
        retry_max_backoff_ms=25.0,
        retry_jitter=0.1,
        retry_budget=1000,
    )
    fields.update(overrides)
    return ControlLayerConfig(**fields)


class TestRetryPolicy:
    def test_same_seed_same_delays(self):
        a = RetryPolicy.from_config(retry_control(), seed=11)
        b = RetryPolicy.from_config(retry_control(), seed=11)
        assert [a.backoff(i, "tool") for i in range(3)] == [
            b.backoff(i, "tool") for i in range(3)
        ]

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy.from_config(retry_control(retry_jitter=0.0), seed=0)
        delays = [policy.backoff(i, "tool") for i in range(3)]
        assert delays[0] == pytest.approx(0.010)
        assert delays[1] == pytest.approx(0.020)
        assert delays[2] == pytest.approx(0.025)  # capped at retry_max_backoff_ms

    def test_attempt_cap_returns_none(self):
        policy = RetryPolicy.from_config(retry_control(), seed=0)
        assert policy.backoff(3, "tool") is None  # attempt 4 of max 4

    def test_per_class_budget_exhausts(self):
        policy = RetryPolicy.from_config(retry_control(retry_budget=2), seed=0)
        assert policy.backoff(0, "tool") is not None
        assert policy.backoff(0, "tool") is not None
        assert policy.backoff(0, "tool") is None  # tool budget spent
        assert policy.backoff(0, "handoff") is not None  # separate class

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy.from_config(
            retry_control(retry_jitter=0.1, retry_max_backoff_ms=1000.0), seed=3
        )
        for attempt in range(3):
            delay = policy.backoff(attempt, "tool")
            nominal = 0.010 * (2.0**attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1


# -- system harness ----------------------------------------------------------


def make_agent(index, tool_delay=True):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(PROMPT + f"Task {index}. ")
        await context.generate_until(max_tokens=2)
        if tool_delay:
            observation = await ctx.http_get(TOOL_URL)
            await context.fill(f"obs:{observation} ")
            await context.generate_until(max_tokens=2)
        context.free()
        return None

    return InferletProgram(name=f"chaos{index}", main=main)


def run_fleet(
    seed=0,
    fault_plan=(),
    n_agents=3,
    num_devices=2,
    disagg=False,
    tracing=False,
    retry_max_attempts=3,
):
    """Seeded staggered fleet on a small cluster with the chaos plane armed.

    Returns ``(server, statuses)``; the caller inspects pools, health and
    metrics on the server after the run completes.
    """
    sim = Simulator(seed=seed)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=num_devices, host_kv_pages=48),
        control=ControlLayerConfig(
            placement_policy="disaggregated" if disagg else "round_robin",
            disaggregation=disagg,
            prefill_shards=1,
            faults=True,
            fault_plan=tuple(tuple(entry) for entry in fault_plan),
            retry_max_attempts=retry_max_attempts,
            tracing=tracing,
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.15))
    programs = [make_agent(i) for i in range(n_agents)]
    for program in programs:
        server.register_program(program)

    async def one(program, delay):
        await sim.sleep(delay)
        return await server.run_inferlet(program.name)

    async def run_all():
        tasks = [
            sim.create_task(one(p, 0.05 + i * 0.1)) for i, p in enumerate(programs)
        ]
        return await sim.gather(tasks)

    results = sim.run_until_complete(run_all())
    return server, [r.status for r in results]


def assert_pools_conserved(server):
    """Every device pool, embed pool and host slot came home."""
    for service in server.controller._services.values():
        for shard in service.shards:
            rm = shard.resources
            assert rm.memory.kv_pages.num_allocated == 0, (
                f"shard {shard.index}: {rm.memory.kv_pages.num_allocated} KV pages leaked"
            )
            assert rm.memory.embeds.num_allocated == 0, (
                f"shard {shard.index}: {rm.memory.embeds.num_allocated} embed slots leaked"
            )
            assert not rm._spaces, f"shard {shard.index}: spaces leaked"
        assert service.host_pool.num_used == 0, "host slots leaked"


# -- system: pool conservation under 100+ chaos interleavings ----------------


@pytest.mark.parametrize("block", range(4))
def test_seeded_chaos_interleavings_conserve_pools(block):
    """100+ generated fault schedules, zero pool leaks in every one.

    Four parametrized blocks of 26 seeds each (104 interleavings total);
    odd seeds run the disaggregated two-role topology so link faults and
    stream re-plans are exercised, with shard 0 (the sole prefill shard)
    protected from crashes.
    """
    for offset in range(26):
        seed = block * 26 + offset
        disagg = seed % 2 == 1
        plan = FaultPlan.generate(
            seed=seed,
            horizon_s=0.9,
            num_shards=2,
            n_faults=3,
            protect_shards=(0,) if disagg else (),
        )
        server, statuses = run_fleet(seed=seed, fault_plan=plan, disagg=disagg)
        assert_pools_conserved(server)
        # Every launch reached a terminal state (nothing wedged mid-air).
        assert all(
            status in ("finished", "failed", "terminated") for status in statuses
        ), (seed, statuses)


def test_chaos_off_is_structurally_inert():
    """faults=False builds none of the chaos plane (the off path cannot
    even reach it: no injector, no health service, no router probe)."""
    server = PieServer(Simulator(seed=0), num_devices=2)
    controller = server.controller
    assert controller.faults is None
    assert controller.health is None
    assert controller.retry is None
    assert controller.brownout is None
    for service in controller._services.values():
        assert service.router.health_probe is None


# -- system: detection and failover -----------------------------------------


def test_crash_marks_shard_down_and_stops_placement():
    server, statuses = run_fleet(
        seed=4, n_agents=4, fault_plan=(("shard_crash", 0.3, 1),), tracing=True
    )
    health = server.controller.health
    assert health.state(1) == "down"
    assert not health.placeable(1)
    assert health.placeable(0)
    assert server.metrics.shard_crashes == 1
    # Detection paid the heartbeat: the shard_down transition landed on
    # the trace strictly after the injection instant.
    events = server.trace.events("fault")
    crash_ts = next(e["ts"] for e in events if e["name"] == "fault_shard_crash")
    down_ts = next(e["ts"] for e in events if e["name"] == "shard_down")
    assert down_ts > crash_ts
    # No batch executed on the dead shard after detection.
    for event in server.trace.events("exec"):
        if event.get("shard") == 1:
            assert event["ts"] < down_ts
    assert_pools_conserved(server)


def test_launches_after_crash_land_on_healthy_shards_and_finish():
    """Round-robin placement skips the dead shard: every agent launched
    after the crash is detected still finishes (a placement on the dead
    device would fail its submissions with FaultInjectedError)."""
    server, statuses = run_fleet(
        seed=2, n_agents=5, fault_plan=(("shard_crash", 0.02, 1),)
    )
    # The crash precedes every launch; detection happens at the first
    # heartbeat after the first register poke, so at worst the earliest
    # launch races it — all later ones must finish on shard 0.
    assert statuses.count("finished") >= 4
    assert server.metrics.shard_crashes == 1
    assert_pools_conserved(server)


def test_terminated_inferlet_carries_structured_cause():
    """A victim with device-resident KV cannot be rescued: it terminates
    with cause="shard_down" on the typed error."""
    sim = Simulator(seed=5)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=2, host_kv_pages=0),
        control=ControlLayerConfig(
            placement_policy="round_robin",
            faults=True,
            fault_plan=(("shard_crash", 0.2, 0),),
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.5))
    server.register_program(make_agent(0))
    instance, _ = server.launch("chaos0")
    sim.run_until_complete(server.lifecycle.wait_for_completion(instance))
    assert instance.status == "terminated"
    assert server.metrics.failover_terminations == 1
    # The structured cause is on the instance, and any API touch-point
    # surfaces it inside the typed InferletTerminated.
    assert instance.terminated_cause == "shard_down"
    with pytest.raises(InferletTerminated) as exc_info:
        instance.check_alive()
    assert exc_info.value.cause == "shard_down"


# -- system: relaunch (failover rescue) --------------------------------------


def make_mover():
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill("A long analysis prompt. " * 12)
        await context.generate_until(max_tokens=3)
        observation = await ctx.http_get(TOOL_URL)
        await context.fill(f"obs:{observation} ")
        out = await context.generate_until(max_tokens=3)
        context.free()
        return out

    return InferletProgram(name="mover", main=main)


def run_mover(crash):
    sim = Simulator(seed=3)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            swap_policy="proactive",
            faults=True,
            fault_plan=(("shard_crash", 0.45, 0),) if crash else (),
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.5))
    server.register_program(make_mover())
    result = sim.run_until_complete(server.run_inferlet("mover"))
    return server, result


def test_swapped_inferlet_is_relaunched_with_identical_tokens():
    """The mover blocks on a 500ms tool call, is proactively swapped to
    the host tier, and its shard then crashes.  Failover re-materializes
    it on the healthy shard; it resumes and emits exactly the tokens of
    the crash-free run — no duplicates, no losses."""
    _, clean = run_mover(crash=False)
    server, crashed = run_mover(crash=True)
    assert clean.status == "finished"
    assert crashed.status == "finished"
    assert crashed.result == clean.result
    assert server.metrics.failover_relaunches == 1
    assert server.metrics.failover_terminations == 0
    assert server.metrics.swap_outs >= 1
    assert_pools_conserved(server)


def test_relaunch_requires_a_healthy_destination():
    """With every shard down the rescue is impossible: the mover is
    terminated with cause, and new launches fail typed."""
    sim = Simulator(seed=3)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            swap_policy="proactive",
            faults=True,
            fault_plan=(("shard_crash", 0.45, 0), ("shard_crash", 0.45, 1)),
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.5))
    server.register_program(make_mover())
    instance, _ = server.launch("mover")
    sim.run_until_complete(server.lifecycle.wait_for_completion(instance))
    assert instance.status == "terminated"
    assert instance.terminated_cause == "shard_down"
    assert server.metrics.failover_relaunches == 0
    assert server.metrics.failover_terminations == 1


# -- system: tool faults, retry and backoff ----------------------------------


def test_tool_fault_retries_then_succeeds_outside_the_window():
    """A short tool_error window: the retry policy backs off past the end
    of the window and the call eventually succeeds."""
    server, statuses = run_fleet(
        seed=1,
        n_agents=1,
        fault_plan=(("tool_error", 0.0, 0.12, TOOL_URL),),
        retry_max_attempts=8,
    )
    assert statuses == ["finished"]
    assert server.metrics.tool_faults >= 1
    assert server.metrics.tool_retries >= 1
    assert server.metrics.retries_exhausted == 0
    assert server.metrics.retry_backoff_seconds > 0


def test_tool_fault_exhausts_retries_with_typed_error():
    """A window outlasting every backoff: the inferlet fails with
    RetriesExhaustedError chained onto the injected fault."""
    sim = Simulator(seed=1)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=1),
        control=ControlLayerConfig(
            faults=True,
            fault_plan=(("tool_timeout", 0.0, 60.0, TOOL_URL),),
            retry_max_attempts=3,
            retry_jitter=0.0,
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.15))
    server.register_program(make_agent(0))
    instance, _ = server.launch("chaos0")
    sim.run_until_complete(server.lifecycle.wait_for_completion(instance))
    assert instance.status == "failed"
    error = instance.task.exception()
    assert isinstance(error, RetriesExhaustedError)
    assert error.attempts == 3
    assert isinstance(error.__cause__, FaultInjectedError)
    assert error.__cause__.kind == "tool_timeout"
    assert server.metrics.retries_exhausted == 1
    # Each tool_timeout attempt burned the simulated client-side wait.
    assert sim.now >= 3 * 0.05
    assert_pools_conserved(server)


# -- system: SLO-driven brownout ---------------------------------------------


def make_filler(name, tenant_prompt="", max_tokens=2):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(PROMPT + tenant_prompt)
        await context.generate_until(max_tokens=max_tokens)
        context.free()
        return None

    return InferletProgram(name=name, main=main)


def run_brownout_scenario():
    sim = Simulator(seed=9)
    tenants = (
        # Impossible TTFT target: every fleet first-token observation is
        # an SLO miss, so the burn-rate alert must fire while it runs.
        TenantSpec(name="fleet", priority_class="interactive", ttft_slo_ms=0.001),
        # Lax target: keeps the monitor ticking after the fleet drains so
        # the alert windows empty out and the brownout clears.
        TenantSpec(name="calm", priority_class="interactive", ttft_slo_ms=60_000.0),
        TenantSpec(name="backfill", priority_class="batch"),
    )
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=96, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            qos=True,
            tenants=tenants,
            chunked_prefill=True,
            prefill_chunk_tokens=16,
            max_batch_tokens=24,
            monitoring=True,
            scrape_interval_ms=5.0,
            slo_burn_windows=((0.2, 0.05, 2.0),),
            faults=True,
            brownout=True,
            brownout_chunk_scale=2.0,
        ),
    )
    server = PieServer(sim, config=config)
    controller = server.controller
    for index in range(4):
        server.register_program(make_filler(f"burn{index}", f"Task {index}. "))
    server.register_program(make_filler("longtail", "Keep going. ", max_tokens=160))
    server.register_program(make_filler("batchjob", "Backfill. "))

    observed = {"shed": None, "chunk_scale_during": None, "batch_ok_after": False}

    async def burn_load():
        for index in range(4):
            await sim.sleep(0.05)
            await server.run_inferlet(f"burn{index}", tenant="fleet")

    async def keepalive():
        await sim.sleep(0.02)
        await server.run_inferlet("longtail", tenant="calm")

    async def shed_probe():
        # Poll for activation, then try one batch-class launch inside the
        # brownout window and record the typed rejection.
        while not controller.brownout.active:
            await sim.sleep(0.005)
        observed["chunk_scale_during"] = server.service().shards[0].scheduler.chunk_scale
        try:
            await server.run_inferlet("batchjob", tenant="backfill")
        except AdmissionRejectedError as exc:
            observed["shed"] = exc
        # Wait for the clear, then batch admission must work again.
        while controller.brownout.active:
            await sim.sleep(0.005)
        result = await server.run_inferlet("batchjob", tenant="backfill")
        observed["batch_ok_after"] = result.status == "finished"

    async def run_all():
        await sim.gather(
            [
                sim.create_task(burn_load()),
                sim.create_task(keepalive()),
                sim.create_task(shed_probe()),
            ]
        )

    sim.run_until_complete(run_all())
    return server, observed


def test_brownout_fires_sheds_batch_widens_chunks_and_clears():
    server, observed = run_brownout_scenario()
    metrics = server.metrics
    assert metrics.brownout_activations >= 1
    assert metrics.brownout_clears >= 1
    assert metrics.brownout_shed >= 1
    # The shed was typed and attributed.
    assert isinstance(observed["shed"], AdmissionRejectedError)
    assert observed["shed"].reason == "brownout"
    assert observed["shed"].tenant == "backfill"
    # Chunk budgets widened during the brownout and restored after it.
    assert observed["chunk_scale_during"] == 2.0
    for shard in server.service().shards:
        assert shard.scheduler.chunk_scale == 1.0
    assert observed["batch_ok_after"]
    # Interactive admission was never shed.
    assert metrics.qos_rejected == metrics.brownout_shed


# -- reports: fault instants and recovery stall buckets ----------------------


def test_slo_report_interleaves_fault_instants():
    """``export_metrics`` carries the injected-fault record, and the SLO
    report renders FAULT lines on the alert timeline."""
    sim = Simulator(seed=2)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=1),
        control=ControlLayerConfig(
            monitoring=True,
            faults=True,
            fault_plan=(("tool_error", 0.0, 0.1, TOOL_URL),),
            retry_max_attempts=8,
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.15))
    server.register_program(make_agent(0))
    instance, _ = server.launch("chaos0")
    sim.run_until_complete(server.lifecycle.wait_for_completion(instance))
    assert instance.status == "finished"

    from repro.tools.slo_report import build_report, render_report

    document = server.export_metrics()
    assert [record["kind"] for record in document["faults"]] == ["tool_error"]
    report = build_report(document)
    assert report["faults"] == document["faults"]
    rendered = render_report(report)
    assert "FAULT tool_error" in rendered


def test_trace_report_buckets_relaunch_and_retry_backoff():
    """The rescue window and the backoff waits land in their own stall
    attribution buckets."""
    from repro.tools.trace_report import attribute_stalls

    # Relaunch: the mover rescue with the flight recorder on.
    sim = Simulator(seed=3)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=64, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            swap_policy="proactive",
            tracing=True,
            faults=True,
            fault_plan=(("shard_crash", 0.45, 0),),
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.5))
    server.register_program(make_mover())
    result = sim.run_until_complete(server.run_inferlet("mover"))
    assert result.status == "finished"
    assert server.metrics.failover_relaunches == 1
    rows = attribute_stalls(server.controller.trace.events())
    assert rows[result.instance_id]["buckets"]["relaunch"] > 0

    # Retry backoff: a tool-fault window with the flight recorder on.
    server, statuses = run_fleet(
        seed=1,
        n_agents=1,
        fault_plan=(("tool_error", 0.0, 0.12, TOOL_URL),),
        retry_max_attempts=8,
        tracing=True,
    )
    assert statuses == ["finished"]
    assert server.metrics.tool_retries >= 1
    rows = attribute_stalls(server.controller.trace.events())
    backoff = sum(row["buckets"]["retry_backoff"] for row in rows.values())
    assert backoff > 0
