"""Unit tests for the grammar package and Pie core internals
(traits, batching, resource manager, Wasm runtime, FCFS contention policy)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GrammarError, InferletError, ReproError, ResourceError
from repro.core import PieServer, InferletProgram
from repro.core.batching import form_candidate_batches, select_longest_waiting
from repro.core.command_queue import Command, CommandQueue
from repro.core.config import WasmRuntimeConfig
from repro.core.resources import ResourceManager
from repro.core.traits import (
    ALL_APIS,
    CONTROL_LAYER_APIS,
    INFERENCE_LAYER_APIS,
    api_layer,
    supertraits,
    trait_of_api,
    validate_model_traits,
)
from repro.core.wasm import WasmBinary, WasmRuntime
from repro.gpu import DeviceMemory, GpuConfig
from repro.grammar import EarleyMatcher, EbnfGrammar, JsonMachine
from repro.model import get_model_config
from repro.sim import Simulator
from repro.support import Context


class TestJsonMachine:
    @pytest.mark.parametrize(
        "text",
        ['{"a":1}', "[1,2,3]", '"hello"', "true", "false", "null", "42", '{"k":{"n":[1,"x"]}}', "{}", "[]"],
    )
    def test_accepts_valid_json(self, text):
        machine = JsonMachine()
        machine.advance_text(text)
        assert machine.is_complete()

    @pytest.mark.parametrize("text,bad", [("{", "}1"), ("[1", "}"), ('{"a"', "1"), ("tr", "x")])
    def test_rejects_invalid_next_byte(self, text, bad):
        machine = JsonMachine()
        machine.advance_text(text)
        with pytest.raises(GrammarError):
            machine.advance_text(bad)

    def test_allowed_bytes_at_start(self):
        machine = JsonMachine()
        allowed = machine.allowed_next_bytes()
        assert ord("{") in allowed and ord("[") in allowed and ord('"') in allowed
        assert ord("}") not in allowed

    def test_incomplete_value_not_complete(self):
        machine = JsonMachine()
        machine.advance_text('{"key"')
        assert not machine.is_complete()

    def test_every_prefix_only_allows_listed_bytes(self):
        machine = JsonMachine()
        for byte in '{"ab":[1,true],"c":null}'.encode():
            assert byte in machine.allowed_next_bytes()
            machine.advance(byte)
        assert machine.is_complete()


class TestEbnf:
    GRAMMAR = """
    expr := term | term "+" expr
    term := digit | digit term
    digit := [0-9]
    """

    def test_parse_and_accept(self):
        matcher = EarleyMatcher(EbnfGrammar.parse(self.GRAMMAR))
        matcher.advance_text("12+345+6")
        assert matcher.is_complete()

    def test_reject_illegal_byte(self):
        matcher = EarleyMatcher(EbnfGrammar.parse(self.GRAMMAR))
        matcher.advance_text("12")
        with pytest.raises(GrammarError):
            matcher.advance(ord("-"))

    def test_allowed_bytes(self):
        matcher = EarleyMatcher(EbnfGrammar.parse(self.GRAMMAR))
        allowed = matcher.allowed_next_bytes()
        assert all(chr(b).isdigit() for b in allowed)
        matcher.advance(ord("7"))
        assert ord("+") in matcher.allowed_next_bytes()

    def test_undefined_rule_rejected(self):
        with pytest.raises(GrammarError):
            EbnfGrammar.parse("a := b")

    def test_malformed_rule_rejected(self):
        with pytest.raises(GrammarError):
            EbnfGrammar.parse("just text without define")

    def test_literal_rule(self):
        grammar = EbnfGrammar.parse('greeting := "hi" | "hey"')
        matcher = EarleyMatcher(grammar)
        matcher.advance_text("hey")
        assert matcher.is_complete()

    @given(st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_numbers_always_accepted(self, value):
        matcher = EarleyMatcher(EbnfGrammar.parse(self.GRAMMAR))
        matcher.advance_text(str(value))
        assert matcher.is_complete()


class TestTraits:
    def test_42_api_functions(self):
        assert len(ALL_APIS) == 42
        assert len(CONTROL_LAYER_APIS) == 24
        assert len(INFERENCE_LAYER_APIS) == 18

    def test_layer_classification(self):
        assert api_layer("forward") == "inference"
        assert api_layer("send") == "control"
        with pytest.raises(ReproError):
            api_layer("not_an_api")

    def test_trait_lookup(self):
        assert trait_of_api("embed_txt") == "InputText"
        assert trait_of_api("tokenize") == "Tokenize"

    def test_supertraits_transitive(self):
        parents = supertraits("Tokenize")
        assert "InputText" in parents and "Allocate" in parents and "Core" in parents

    def test_validate_model_traits(self):
        validate_model_traits(["Core", "Allocate", "Forward"])
        with pytest.raises(ReproError):
            validate_model_traits(["Forward"])  # missing supertraits


def _command(sim, kind, queue_key=None, writes=frozenset(), issue_time=0.0, priority=0):
    command = Command(
        kind=kind,
        inferlet_id="test",
        payload={},
        future=sim.create_future(),
        issue_time=issue_time,
        writes=writes,
        priority=priority,
    )
    return command


class TestBatchFormation:
    def test_vertical_run_stops_at_kind_change(self):
        sim = Simulator()
        queue = CommandQueue(key="q1", model="m", owner="a")
        queue.push(_command(sim, "forward"))
        queue.push(_command(sim, "forward"))
        queue.push(_command(sim, "sample"))
        run = queue.head_run(max_commands=10)
        assert len(run) == 2
        assert all(c.kind == "forward" for c in run)

    def test_vertical_run_stops_at_write_conflict(self):
        sim = Simulator()
        queue = CommandQueue(key="q1", model="m", owner="a")
        queue.push(_command(sim, "forward", writes=frozenset({("kv", 1)})))
        queue.push(_command(sim, "forward", writes=frozenset({("kv", 1)})))
        assert len(queue.head_run(10)) == 1

    def test_horizontal_merge_and_priority_order(self):
        sim = Simulator()
        low = CommandQueue(key="low", model="m", owner="a", priority=0)
        high = CommandQueue(key="high", model="m", owner="b", priority=5)
        low.push(_command(sim, "forward", issue_time=0.0))
        high.push(_command(sim, "forward", issue_time=1.0))
        batches = form_candidate_batches([low, high], max_batch_rows=8)
        commands = batches["forward"].commands
        assert len(commands) == 2
        assert commands[0].queue_key == "high"  # higher priority placed first

    def test_truncation_to_max_rows(self):
        sim = Simulator()
        queues = []
        for index in range(5):
            queue = CommandQueue(key=f"q{index}", model="m", owner="a")
            queue.push(_command(sim, "forward"))
            queues.append(queue)
        batches = form_candidate_batches(queues, max_batch_rows=3)
        assert len(batches["forward"]) == 3

    def test_select_longest_waiting(self):
        sim = Simulator()
        q1 = CommandQueue(key="q1", model="m", owner="a")
        q2 = CommandQueue(key="q2", model="m", owner="a")
        q1.push(_command(sim, "sample", issue_time=5.0))
        q2.push(_command(sim, "forward", issue_time=1.0))
        batches = form_candidate_batches([q1, q2], max_batch_rows=8)
        chosen = select_longest_waiting(batches)
        assert chosen.kind == "forward"

    def test_queue_synchronize_barrier(self):
        sim = Simulator()
        queue = CommandQueue(key="q", model="m", owner="a")
        command = _command(sim, "forward")
        queue.push(command)
        barrier = sim.create_future()
        queue.synchronize(barrier)
        assert not barrier.done()
        queue.pop_commands([command])
        queue.mark_completed()
        assert barrier.done()


class TestResourceManager:
    def make(self):
        config = get_model_config("llama-sim-1b")
        memory = DeviceMemory(config, GpuConfig(num_kv_pages=16, num_embed_slots=16))
        return ResourceManager(memory, model_name="llama-sim-1b")

    def test_alloc_resolve_dealloc(self):
        manager = self.make()
        manager.create_space("a")
        pages = manager.alloc_kv_pages("a", 2)
        physical = manager.resolve_kv_many("a", pages)
        assert len(set(physical)) == 2
        manager.dealloc_kv_pages("a", pages)
        with pytest.raises(ResourceError):
            manager.resolve_kv("a", pages[0])

    def test_cross_owner_access_rejected(self):
        manager = self.make()
        manager.create_space("a")
        manager.create_space("b")
        pages = manager.alloc_kv_pages("a", 1)
        with pytest.raises(ResourceError):
            manager.resolve_kv("b", pages[0])

    def test_export_survives_exporter_exit(self):
        manager = self.make()
        manager.create_space("a")
        pages = manager.alloc_kv_pages("a", 2)
        physical = manager.resolve_kv_many("a", pages)
        manager.export_kv_pages("a", pages, "shared")
        manager.destroy_space("a")
        # Pages still resident because the export holds a reference.
        manager.create_space("b")
        imported = manager.import_kv_pages("b", "shared")
        assert manager.resolve_kv_many("b", imported) == physical
        manager.release_export("shared")
        manager.destroy_space("b")
        assert manager.memory.kv_pages.num_allocated == 0

    def test_duplicate_export_name_rejected(self):
        manager = self.make()
        manager.create_space("a")
        pages = manager.alloc_kv_pages("a", 1)
        manager.export_kv_pages("a", pages, "n")
        with pytest.raises(ResourceError):
            manager.export_kv_pages("a", pages, "n")

    def test_destroy_space_frees_everything(self):
        manager = self.make()
        manager.create_space("a")
        manager.alloc_kv_pages("a", 3)
        manager.alloc_embeds("a", 4)
        manager.destroy_space("a")
        assert manager.memory.kv_pages.num_allocated == 0
        assert manager.memory.embeds.num_allocated == 0


class TestWasmRuntime:
    def test_cold_upload_then_warm_reuse(self):
        sim = Simulator()
        runtime = WasmRuntime(sim, WasmRuntimeConfig())
        binary = WasmBinary(name="prog", program=lambda ctx: None, size_bytes=256 * 1024)

        async def scenario():
            first = await runtime.upload(binary)
            second = await runtime.upload(binary)
            return first, second

        first, second = sim.run_until_complete(scenario())
        assert first > 0
        assert second == 0.0  # cached
        assert runtime.is_cached("prog")

    def test_instance_pool_limit(self):
        sim = Simulator()
        runtime = WasmRuntime(sim, WasmRuntimeConfig(pool_size=2))
        binary = WasmBinary(name="prog", program=lambda ctx: None)
        runtime.register_cached(binary)

        async def scenario():
            await runtime.instantiate("prog")
            await runtime.instantiate("prog")
            with pytest.raises(InferletError):
                await runtime.instantiate("prog")
            runtime.release_instance()
            await runtime.instantiate("prog")
            return runtime.live_instances

        assert sim.run_until_complete(scenario()) == 2

    def test_unknown_binary_rejected(self):
        sim = Simulator()
        runtime = WasmRuntime(sim, WasmRuntimeConfig())
        with pytest.raises(InferletError):
            runtime.get_binary("missing")


class TestFcfsContention:
    def test_youngest_inferlet_terminated_on_pressure(self):
        """When KV pages run out, the most recently created inferlet is
        terminated to free resources for the earlier one (FCFS)."""
        sim = Simulator(seed=2)
        from repro.core.config import PieConfig
        from repro.gpu import GpuConfig as GC

        config = PieConfig(gpu=GC(num_kv_pages=8, num_embed_slots=64))
        server = PieServer(sim, models=["llama-sim-1b"], config=config)

        async def hog(ctx):
            queue = ctx.create_queue()
            ctx.alloc_kvpage(queue, 5)
            await ctx.sleep(2.0)  # hold the pages
            return "survived"

        server.register_program(InferletProgram(name="hog", main=hog))

        async def scenario():
            first_task = sim.create_task(server.run_inferlet("hog"))
            await sim.sleep(0.5)
            second_task = sim.create_task(server.run_inferlet("hog"))
            first = await first_task
            await sim.timeout(second_task, 5.0)
            return first

        first = sim.run_until_complete(scenario())
        assert first.status == "finished"
        statuses = [m.status for m in server.metrics.per_inferlet.values()]
        assert "terminated" in statuses
        assert server.metrics.inferlets_terminated == 1
