"""Tests for the toy transformer substrate: determinism and KV-cache exactness."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.model import (
    ByteTokenizer,
    KvContext,
    LoraAdapter,
    TinyTransformer,
    get_model_config,
)


@pytest.fixture(scope="module")
def config():
    return get_model_config("llama-sim-1b")


@pytest.fixture(scope="module")
def model(config):
    return TinyTransformer(config)


@pytest.fixture(scope="module")
def tokenizer(config):
    return ByteTokenizer(config.vocab_size)


def run_full(model, token_ids):
    """Single-call forward over all tokens with no KV cache."""
    positions = list(range(len(token_ids)))
    embeds = model.embed_tokens(token_ids, positions)
    return model.forward(embeds, positions)


def context_from_result(config, result, upto=None):
    """Build a KvContext from a ForwardResult's new K/V (first ``upto`` tokens)."""
    upto = upto if upto is not None else result.hidden.shape[0]
    return KvContext(
        keys=[k[:upto] for k in result.new_keys],
        values=[v[:upto] for v in result.new_values],
        positions=result.positions[:upto].copy(),
        visible=np.ones(upto, dtype=bool),
    )


class TestEmbedding:
    def test_shapes(self, model, config):
        emb = model.embed_tokens([1, 2, 3], [0, 1, 2])
        assert emb.shape == (3, config.d_model)

    def test_deterministic(self, model):
        a = model.embed_tokens([10, 20], [0, 1])
        b = model.embed_tokens([10, 20], [0, 1])
        np.testing.assert_array_equal(a, b)

    def test_position_changes_embedding(self, model):
        a = model.embed_tokens([42], [0])
        b = model.embed_tokens([42], [5])
        assert not np.allclose(a, b)

    def test_token_out_of_vocab_rejected(self, model, config):
        with pytest.raises(ReproError):
            model.embed_tokens([config.vocab_size], [0])

    def test_length_mismatch_rejected(self, model):
        with pytest.raises(ReproError):
            model.embed_tokens([1, 2], [0])

    def test_image_embedding_shape_and_determinism(self, model, config):
        blob = b"\x01\x02\x03" * 100
        a = model.embed_image(blob, 4, [0, 1, 2, 3])
        b = model.embed_image(blob, 4, [0, 1, 2, 3])
        assert a.shape == (4, config.d_model)
        np.testing.assert_array_equal(a, b)

    def test_num_image_embeds_needed(self, model):
        assert model.num_image_embeds_needed(1) == 1
        assert model.num_image_embeds_needed(1024) == 1
        assert model.num_image_embeds_needed(1025) == 2


class TestForwardBasics:
    def test_output_shapes(self, model, config):
        result = run_full(model, [1, 2, 3, 4])
        assert result.hidden.shape == (4, config.d_model)
        assert len(result.new_keys) == config.n_layers
        assert result.new_keys[0].shape == (4, config.n_kv_heads, config.d_head)

    def test_deterministic(self, model):
        r1 = run_full(model, [5, 6, 7])
        r2 = run_full(model, [5, 6, 7])
        np.testing.assert_array_equal(r1.hidden, r2.hidden)

    def test_causality_prefix_invariance(self, model):
        """Adding future tokens must not change earlier tokens' hidden states."""
        short = run_full(model, [9, 8, 7])
        longer = run_full(model, [9, 8, 7, 6, 5])
        np.testing.assert_allclose(short.hidden, longer.hidden[:3], atol=1e-5)

    def test_logits_shape(self, model, config):
        result = run_full(model, [1, 2])
        logits = model.logits(result.hidden)
        assert logits.shape == (2, config.vocab_size)

    def test_bad_input_shape_rejected(self, model):
        with pytest.raises(ReproError):
            model.forward(np.zeros((2, 3), dtype=np.float32), [0, 1])

    def test_positions_mismatch_rejected(self, model, config):
        with pytest.raises(ReproError):
            model.forward(np.zeros((2, config.d_model), dtype=np.float32), [0])


class TestKvCacheExactness:
    """Splitting a forward pass across KV-cache reuse must be exact."""

    def test_split_prefill_matches_fused(self, model, config, tokenizer):
        tokens = tokenizer.encode("Hello, world! This is a KV cache test.")
        fused = run_full(model, tokens)

        split_point = len(tokens) // 2
        first = run_full(model, tokens[:split_point])
        ctx = context_from_result(config, first)
        rest_pos = list(range(split_point, len(tokens)))
        rest_emb = model.embed_tokens(tokens[split_point:], rest_pos)
        second = model.forward(rest_emb, rest_pos, ctx)

        np.testing.assert_allclose(
            fused.hidden[split_point:], second.hidden, atol=1e-4
        )
        for layer in range(config.n_layers):
            np.testing.assert_allclose(
                fused.new_keys[layer][split_point:], second.new_keys[layer], atol=1e-4
            )

    def test_token_by_token_decode_matches_fused(self, model, config):
        tokens = [72, 101, 108, 108, 111, 44, 32, 87]
        fused = run_full(model, tokens)

        keys = [np.zeros((0, config.n_kv_heads, config.d_head), np.float32) for _ in range(config.n_layers)]
        values = [np.zeros((0, config.n_kv_heads, config.d_head), np.float32) for _ in range(config.n_layers)]
        positions = np.zeros(0, dtype=np.int64)
        last_hidden = None
        for i, tok in enumerate(tokens):
            ctx = KvContext(
                keys=[k.copy() for k in keys],
                values=[v.copy() for v in values],
                positions=positions.copy(),
                visible=np.ones(len(positions), dtype=bool),
            )
            emb = model.embed_tokens([tok], [i])
            res = model.forward(emb, [i], ctx)
            last_hidden = res.hidden[0]
            keys = [np.concatenate([keys[l], res.new_keys[l]]) for l in range(config.n_layers)]
            values = [np.concatenate([values[l], res.new_values[l]]) for l in range(config.n_layers)]
            positions = np.concatenate([positions, np.array([i], dtype=np.int64)])

        np.testing.assert_allclose(fused.hidden[-1], last_hidden, atol=1e-4)

    def test_masked_context_token_changes_output(self, model, config):
        tokens = [10, 20, 30, 40, 50]
        first = run_full(model, tokens[:4])
        ctx_visible = context_from_result(config, first)
        ctx_masked = context_from_result(config, first)
        ctx_masked.visible[1] = False  # hide the second cached token

        emb = model.embed_tokens([tokens[4]], [4])
        out_visible = model.forward(emb, [4], ctx_visible)
        out_masked = model.forward(emb, [4], ctx_masked)
        assert not np.allclose(out_visible.hidden, out_masked.hidden)

    def test_masked_context_equivalent_to_never_seeing_token(self, model, config):
        """Masking cached token t is equivalent to a context without t,
        provided the cached K/V were produced without attending to t."""
        tokens = [3, 5, 7, 11]
        # Compute each token's KV independently (window = itself only) so the
        # cached values do not embed information about other tokens.
        keys = [[] for _ in range(config.n_layers)]
        values = [[] for _ in range(config.n_layers)]
        for i, tok in enumerate(tokens):
            emb = model.embed_tokens([tok], [i])
            res = model.forward(emb, [i])
            for l in range(config.n_layers):
                keys[l].append(res.new_keys[l][0])
                values[l].append(res.new_values[l][0])

        def build_ctx(indices, visible_flags):
            return KvContext(
                keys=[np.stack([keys[l][i] for i in indices]) for l in range(config.n_layers)],
                values=[np.stack([values[l][i] for i in indices]) for l in range(config.n_layers)],
                positions=np.array(indices, dtype=np.int64),
                visible=np.array(visible_flags, dtype=bool),
            )

        query_emb = model.embed_tokens([13], [len(tokens)])
        ctx_masked = build_ctx([0, 1, 2, 3], [True, False, True, True])
        ctx_dropped = build_ctx([0, 2, 3], [True, True, True])
        out_masked = model.forward(query_emb, [len(tokens)], ctx_masked)
        out_dropped = model.forward(query_emb, [len(tokens)], ctx_dropped)
        np.testing.assert_allclose(out_masked.hidden, out_dropped.hidden, atol=1e-5)

    def test_explicit_mask_overrides_causality(self, model, config):
        tokens = [1, 2, 3]
        embeds = model.embed_tokens(tokens, [0, 1, 2])
        causal = model.forward(embeds, [0, 1, 2])
        # An explicit mask identical to the inferred causal mask gives the
        # same result; a full bidirectional mask changes it (tokens now see
        # the future).
        causal_mask = np.tril(np.ones((3, 3), dtype=bool))
        explicit = model.forward(embeds, [0, 1, 2], attn_mask=causal_mask)
        np.testing.assert_allclose(causal.hidden, explicit.hidden, atol=1e-6)
        full_mask = np.ones((3, 3), dtype=bool)
        bidirectional = model.forward(embeds, [0, 1, 2], attn_mask=full_mask)
        assert not np.allclose(causal.hidden[0], bidirectional.hidden[0])

    def test_explicit_mask_wrong_shape_rejected(self, model):
        embeds = model.embed_tokens([1, 2], [0, 1])
        with pytest.raises(ReproError):
            model.forward(embeds, [0, 1], attn_mask=np.ones((2, 5), dtype=bool))


class TestLora:
    def test_adapter_changes_output(self, model, config):
        adapter = LoraAdapter("test", config, rank=2, alpha=8.0, seed=3)
        tokens = [50, 60, 70]
        embeds = model.embed_tokens(tokens, [0, 1, 2])
        base = model.forward(embeds, [0, 1, 2])
        adapted = model.forward(embeds, [0, 1, 2], adapter=adapter)
        assert not np.allclose(base.hidden, adapted.hidden)

    def test_zero_alpha_is_identity(self, model, config):
        adapter = LoraAdapter("zero", config, rank=2, alpha=0.0, seed=3)
        tokens = [50, 60, 70]
        embeds = model.embed_tokens(tokens, [0, 1, 2])
        base = model.forward(embeds, [0, 1, 2])
        adapted = model.forward(embeds, [0, 1, 2], adapter=adapter)
        np.testing.assert_allclose(base.hidden, adapted.hidden, atol=1e-6)

    def test_invalid_rank_rejected(self, config):
        with pytest.raises(ReproError):
            LoraAdapter("bad", config, rank=0)

    def test_parameter_count(self, config):
        adapter = LoraAdapter("count", config, rank=4)
        expected = config.n_layers * (config.d_model * 4 + 4 * config.d_model)
        assert adapter.parameter_count == expected
