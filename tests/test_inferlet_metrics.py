"""Edge cases of the per-inferlet token-timing metrics.

``note_output`` is the single entry point for output-token accounting; the
TTFT/TPOT SLO machinery (and the trace_report decode buckets) lean on its
timestamp semantics, so the multi-token and degenerate cases are pinned
here explicitly.
"""

from repro.core.metrics import InferletMetrics


def make(launched_at=0.0):
    metrics = InferletMetrics(inferlet_id="m-1")
    metrics.launched_at = launched_at
    return metrics


def test_note_output_first_token_flag_and_timestamps():
    metrics = make()
    assert metrics.note_output(1.0) is True
    assert metrics.note_output(2.0) is False
    assert metrics.output_tokens == 2
    assert metrics.first_token_at == 1.0
    assert metrics.last_token_at == 2.0


def test_note_output_multi_token_stamps_one_timestamp():
    """A bulk record (count>1) is one emission instant: the whole batch
    shares a single timestamp pair, it is not spread over fake steps."""
    metrics = make()
    assert metrics.note_output(3.0, count=4) is True
    assert metrics.output_tokens == 4
    assert metrics.first_token_at == 3.0
    assert metrics.last_token_at == 3.0
    # A later bulk record only advances last_token_at.
    assert metrics.note_output(5.0, count=2) is False
    assert metrics.output_tokens == 6
    assert metrics.first_token_at == 3.0
    assert metrics.last_token_at == 5.0


def test_note_output_nonpositive_count_is_a_noop():
    metrics = make()
    assert metrics.note_output(1.0, count=0) is False
    assert metrics.note_output(1.0, count=-3) is False
    assert metrics.output_tokens == 0
    assert metrics.first_token_at is None
    assert metrics.last_token_at is None
    assert metrics.ttft is None


def test_tpot_single_token_is_none():
    """One token carries no inter-token interval; 0.0 would trivially
    satisfy any TPOT SLO."""
    metrics = make()
    metrics.note_output(1.0)
    assert metrics.tpot is None


def test_tpot_zero_duration_stream_is_none():
    """All tokens recorded at one instant (bulk record after generation):
    no timing information, so no TPOT sample."""
    metrics = make()
    metrics.note_output(2.0, count=8)
    assert metrics.output_tokens == 8
    assert metrics.tpot is None


def test_tpot_mean_over_decode_stream():
    metrics = make()
    metrics.note_output(1.0)
    metrics.note_output(1.5)
    metrics.note_output(2.0)
    assert metrics.tpot == (2.0 - 1.0) / 2


def test_ttft_measured_from_launch_request():
    metrics = make(launched_at=0.5)
    metrics.note_output(2.0, count=3)
    assert metrics.ttft == 1.5
