"""Tests for the tiered KV memory subsystem: host pool, swap manager,
swap-first reclamation, and the host_kv_pages=0 regression."""

import pytest

from repro.core import InferletProgram, PieServer
from repro.core.config import ControlLayerConfig, PieConfig, SWAP_POLICIES
from repro.core.router import Router
from repro.errors import ReproError, ResourceError
from repro.gpu.config import GpuConfig
from repro.gpu.host_pool import HostMemoryPool, kv_page_bytes
from repro.gpu.memory import DeviceMemory
from repro.model.registry import ModelRegistry
from repro.sim import Simulator
from repro.sim.latency import ConstantLatency
from repro.support import Context, SamplingParams
from repro.workloads import ToolEnvironment

SLOW_URL = "http://tools/slow-crm"


def model_config():
    return ModelRegistry(["llama-sim-1b"]).get("llama-sim-1b").config


def make_server(sim, *, kv_pages=48, host_pages=0, policy="proactive"):
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=kv_pages, host_kv_pages=host_pages),
        control=ControlLayerConfig(swap_policy=policy),
    )
    server = PieServer(sim, config=config)
    ToolEnvironment(sim, server.external)
    server.register_external(SLOW_URL, lambda payload: "rows", ConstantLatency(0.3))
    return server


def make_io_agent(name, n_interactions=3, max_tokens=4):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill("You are a research agent. ")
        for step in range(n_interactions):
            await context.generate_until(max_tokens=max_tokens)
            obs = await ctx.http_get(SLOW_URL)
            await context.fill(f"o{step}:{obs} ")
        answer = await context.generate_until(max_tokens=max_tokens)
        context.free()
        return answer

    return InferletProgram(name=name, main=main)


def run_fleet(server, programs, stagger=0.0):
    sim = server.sim
    for program in programs:
        server.register_program(program)

    async def one(program, delay):
        if delay:
            await sim.sleep(delay)
        return await server.run_inferlet(program.name)

    async def run_all():
        tasks = [
            sim.create_task(one(p, i * stagger)) for i, p in enumerate(programs)
        ]
        return await sim.gather(tasks)

    return sim.run_until_complete(run_all())


class TestHostMemoryPool:
    def test_disabled_at_zero_capacity(self):
        pool = HostMemoryPool(model_config(), GpuConfig(host_kv_pages=0))
        assert not pool.enabled
        assert pool.capacity == 0

    def test_store_load_roundtrip_preserves_contents(self):
        config = model_config()
        memory = DeviceMemory(config, GpuConfig(num_kv_pages=4, host_kv_pages=2))
        pool = HostMemoryPool(config, GpuConfig(num_kv_pages=4, host_kv_pages=2))
        [pid] = memory.kv_pages.allocate(1)
        page = memory.kv_pages.page(pid)
        page.positions[:] = 7
        page.valid[:] = True
        page.keys[0][:] = 1.5
        slot = pool.store(page)
        assert pool.num_used == 1
        page.clear()  # device page reused by someone else
        [pid2] = memory.kv_pages.allocate(1)
        restored = memory.kv_pages.page(pid2)
        pool.load(slot, restored)
        assert pool.num_used == 0
        assert restored.positions[0] == 7
        assert restored.valid.all()
        assert float(restored.keys[0][0, 0, 0]) == 1.5

    def test_capacity_enforced_and_discard(self):
        config = model_config()
        memory = DeviceMemory(config, GpuConfig(num_kv_pages=4))
        pool = HostMemoryPool(config, GpuConfig(host_kv_pages=1))
        [pid] = memory.kv_pages.allocate(1)
        slot = pool.store(memory.kv_pages.page(pid))
        from repro.errors import OutOfResourcesError

        with pytest.raises(OutOfResourcesError):
            pool.store(memory.kv_pages.page(pid))
        pool.discard([slot])
        assert pool.num_free == 1
        with pytest.raises(ResourceError):
            pool.discard([slot])

    def test_pcie_cost_model_is_linear(self):
        pool = HostMemoryPool(
            model_config(),
            GpuConfig(
                host_kv_pages=8, pcie_transfer_base_ms=1.0, pcie_transfer_ms_per_page=0.5
            ),
        )
        assert pool.transfer_seconds(0) == 0.0
        assert pool.transfer_seconds(2) == pytest.approx(0.002)
        assert pool.transfer_seconds(4) == pytest.approx(0.003)

    def test_page_bytes_accounting(self):
        config = model_config()
        expected = (
            config.kv_page_size
            * 2
            * config.n_layers
            * config.n_kv_heads
            * config.d_head
            * 4
        )
        assert kv_page_bytes(config) == expected
        pool = HostMemoryPool(config, GpuConfig(host_kv_pages=2))
        assert pool.transfer_bytes(3) == 3 * expected


class TestConfigValidation:
    def test_negative_host_pages_rejected(self):
        with pytest.raises(ReproError):
            GpuConfig(host_kv_pages=-1)

    def test_negative_pcie_terms_rejected(self):
        with pytest.raises(ReproError):
            GpuConfig(pcie_transfer_base_ms=-0.1)

    def test_swap_policy_validated(self):
        with pytest.raises(ReproError):
            PieConfig(control=ControlLayerConfig(swap_policy="aggressive"))
        for policy in SWAP_POLICIES:
            PieConfig(control=ControlLayerConfig(swap_policy=policy))

    def test_swap_min_pages_validated(self):
        with pytest.raises(ReproError):
            PieConfig(control=ControlLayerConfig(swap_min_pages=0))

    def test_server_shorthand_overrides(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, host_kv_pages=32, swap_policy="on_demand")
        assert server.config.gpu.host_kv_pages == 32
        assert server.config.control.swap_policy == "on_demand"
        assert server.service().host_pool.capacity == 32
        assert server.service().swap.enabled


class TestProactiveSwap:
    def test_blocked_agent_is_staged_and_resumed(self):
        sim = Simulator(seed=3)
        server = make_server(sim, kv_pages=64, host_pages=64)
        [result] = run_fleet(server, [make_io_agent("solo")])
        assert result.status == "finished"
        m = server.metrics
        # Each of the 3 tool calls staged the agent out and back in.
        assert m.swap_outs == 3
        assert m.swap_ins == 3
        assert m.kv_pages_swapped_out == m.kv_pages_swapped_in > 0
        assert m.bytes_swapped_out == m.bytes_swapped_in > 0
        assert m.swap_stall_seconds > 0.0
        # Everything came home: the host pool is empty again.
        assert server.service().host_pool.num_used == 0
        assert server.service().swap.num_swapped == 0

    def test_swapped_pages_restore_identical_contents(self):
        # The strongest correctness check available: generation continues
        # from restored KV, so any corruption changes the decoded text.
        def run(host_pages):
            sim = Simulator(seed=5)
            server = make_server(sim, kv_pages=64, host_pages=host_pages)
            [result] = run_fleet(server, [make_io_agent("roundtrip")])
            return server, result

        server_plain, plain = run(0)
        server_swap, swapped = run(64)
        assert server_plain.metrics.swap_outs == 0
        assert server_swap.metrics.swap_outs > 0
        assert plain.status == swapped.status == "finished"
        assert plain.result == swapped.result

    def test_disabled_tier_changes_nothing(self):
        def run():
            sim = Simulator(seed=7)
            server = make_server(sim, kv_pages=64, host_pages=0)
            [result] = run_fleet(server, [make_io_agent("baseline")])
            return server, result, sim.now

        server_a, result_a, now_a = run()
        server_b, result_b, now_b = run()
        assert result_a.result == result_b.result
        assert now_a == now_b
        assert server_a.metrics.swap_outs == 0
        assert server_a.metrics.swap_ins == 0
        # No swap batches ever reach the device.
        kinds = server_a.service().pool.aggregate_stats().batches_by_kind
        assert "swap_out" not in kinds and "swap_in" not in kinds

    def test_swap_traffic_reaches_the_device(self):
        sim = Simulator(seed=3)
        server = make_server(sim, kv_pages=64, host_pages=64)
        run_fleet(server, [make_io_agent("traffic")])
        kinds = server.service().pool.aggregate_stats().batches_by_kind
        assert kinds.get("swap_out") == 3
        assert kinds.get("swap_in") == 3

    def test_exported_pages_are_pinned_on_device(self):
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=64, host_pages=64)

        async def exporter(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("shared prefix ")
            context.export_prefix("pinned-prefix")
            await ctx.http_get(SLOW_URL)  # blocks; prefix must stay resident
            return "ok"

        [result] = run_fleet(server, [InferletProgram(name="exp", main=exporter)])
        assert result.status == "finished"
        # The exported pages were shared (refcount > 1), so nothing moved.
        assert server.metrics.kv_pages_swapped_out == 0


class TestSwapFirstReclamation:
    def _pressure_fleet(self, host_pages, policy="proactive", seed=1):
        sim = Simulator(seed=seed)
        server = make_server(sim, kv_pages=48, host_pages=host_pages, policy=policy)
        programs = [make_io_agent(f"a{i}", n_interactions=4) for i in range(16)]
        results = run_fleet(server, programs, stagger=0.06)
        return server, results

    def test_baseline_terminates_under_pressure(self):
        server, results = self._pressure_fleet(host_pages=0)
        assert server.metrics.inferlets_terminated > 0
        assert server.metrics.reclamation_terminations > 0

    def test_host_tier_prevents_terminations(self):
        baseline, _ = self._pressure_fleet(host_pages=0)
        tiered, results = self._pressure_fleet(host_pages=192)
        assert (
            tiered.metrics.inferlets_terminated
            < baseline.metrics.inferlets_terminated
        )
        assert sum(1 for r in results if r.status == "finished") > sum(
            1 for r in results if r.status == "terminated"
        )

    def test_on_demand_policy_swaps_only_under_pressure(self):
        # A single agent with plenty of memory never triggers reclamation,
        # so the on_demand policy moves nothing.
        sim = Simulator(seed=3)
        server = make_server(sim, kv_pages=64, host_pages=64, policy="on_demand")
        [result] = run_fleet(server, [make_io_agent("lazy")])
        assert result.status == "finished"
        assert server.metrics.swap_outs == 0
        # Under pressure the reclamation path stages blocked inferlets out.
        server2, _ = self._pressure_fleet(host_pages=192, policy="on_demand")
        assert server2.metrics.reclamation_swaps > 0
        assert server2.metrics.swap_outs > 0

    def test_reclamation_terminations_surface_in_cluster_stats(self):
        server, _ = self._pressure_fleet(host_pages=0)
        stats = server.cluster_stats()
        assert (
            stats.combined.reclamation_terminations
            == server.metrics.reclamation_terminations
            > 0
        )


class TestSwapSafety:
    def test_resolving_swapped_page_raises_without_fault_path(self):
        # Direct ResourceManager check: a swapped vid cannot be resolved.
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=16, host_pages=16)
        service = server.service()
        resources = service.resources
        resources.create_space("probe")
        handles = resources.alloc_kv_pages("probe", 2)
        moved = resources.swap_out_kv("probe")
        assert moved == 2
        assert resources.kv_pages_swapped_by("probe") == 2
        with pytest.raises(ResourceError, match="swapped out"):
            resources.resolve_kv("probe", handles[0])
        restored = resources.swap_in_kv("probe")
        assert restored == 2
        assert resources.resolve_kv("probe", handles[0]) >= 0
        resources.destroy_space("probe")

    def test_dealloc_of_swapped_page_discards_host_slot(self):
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=16, host_pages=16)
        resources = server.service().resources
        host_pool = server.service().host_pool
        resources.create_space("probe")
        handles = resources.alloc_kv_pages("probe", 2)
        resources.swap_out_kv("probe")
        assert host_pool.num_used == 2
        resources.dealloc_kv_pages("probe", handles)
        assert host_pool.num_used == 0
        assert resources.kv_pages_swapped_by("probe") == 0
        resources.destroy_space("probe")

    def test_destroy_space_discards_host_slots(self):
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=16, host_pages=16)
        resources = server.service().resources
        host_pool = server.service().host_pool
        resources.create_space("probe")
        resources.alloc_kv_pages("probe", 3)
        resources.swap_out_kv("probe")
        assert host_pool.num_used == 3
        resources.destroy_space("probe")
        assert host_pool.num_used == 0

    def test_fire_and_forget_tool_call_faults_pages_back_in(self):
        # The inferlet keeps using its context while the call is in flight;
        # if its pages were staged out, the first resolve faults them in.
        sim = Simulator(seed=2)
        server = make_server(sim, kv_pages=64, host_pages=64)

        async def eager(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("prompt for a concurrent agent ")
            await context.generate_until(max_tokens=3)
            pending = ctx.http_get(SLOW_URL)
            await context.fill("keep working while the call is in flight ")
            await context.generate_until(max_tokens=3)
            observation = await pending
            await context.fill(f"obs:{observation} ")
            answer = await context.generate_until(max_tokens=3)
            context.free()
            return answer

        [result] = run_fleet(server, [InferletProgram(name="eager", main=eager)])
        assert result.status == "finished"
        # Whether or not a swap happened (timing-dependent), the agent must
        # never observe missing pages and all staged pages must be back.
        assert server.service().swap.num_swapped == 0
        assert server.service().host_pool.num_used == 0
        assert (
            server.metrics.kv_pages_swapped_in == server.metrics.kv_pages_swapped_out
        )


class TestGuardedDispatchResume:
    def test_eager_policy_commands_issued_while_swapped_still_dispatch(self):
        # Embedding-only commands never resolve a KV page, so they trigger
        # no fault-in; under the 'eager' policy (dispatch-on-submit only)
        # the guard would hold them forever unless swap-in re-triggers the
        # scheduler (BatchScheduler.notify_resumed).
        from repro.core.config import SchedulerConfig

        sim = Simulator(seed=2)
        config = PieConfig(
            gpu=GpuConfig(num_kv_pages=64, host_kv_pages=64),
            scheduler=SchedulerConfig(policy="eager"),
        )
        server = PieServer(sim, config=config)
        ToolEnvironment(sim, server.external)
        server.register_external(SLOW_URL, lambda p: "rows", ConstantLatency(0.3))

        async def emb_while_blocked(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("a context that will be staged out ")
            pending = ctx.http_get(SLOW_URL)
            await ctx.sleep(0.05)  # pipeline drains; proactive swap fires
            queue = context.queue
            embs = ctx.alloc_emb(queue, 1)
            ctx.embed_txt(queue, [5], [0], embs)
            dists = await ctx.get_dists(queue, embs)  # guard-held until resume
            observation = await pending
            ctx.dealloc_emb(queue, embs)
            context.free()
            return len(dists)

        [result] = run_fleet(
            server, [InferletProgram(name="embwait", main=emb_while_blocked)]
        )
        assert result.status == "finished"
        assert result.result == 1
        assert server.metrics.swap_outs > 0  # the scenario actually staged


class TestOverlappingExternalCalls:
    def test_blocked_registration_is_counted_not_clobbered(self):
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=32, host_pages=32)
        service = server.service()
        swap = service.swap
        shard = service.shards[0]

        class FakeInstance:
            instance_id = "overlap"
            finished = False
            in_air_commands = 0

        inst = FakeInstance()
        swap.note_blocked(inst, shard)
        swap.note_blocked(inst, shard)  # second overlapping call
        assert swap.is_blocked("overlap")
        swap.note_unblocked(inst)  # first call resolves
        assert swap.is_blocked("overlap")  # still parked on the second
        swap.note_unblocked(inst)
        assert not swap.is_blocked("overlap")
        swap.note_unblocked(inst)  # spurious extra resolve is harmless

    def test_overlapping_tool_calls_roundtrip_cleanly(self):
        sim = Simulator(seed=4)
        server = make_server(sim, kv_pages=64, host_pages=64)

        async def overlapper(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("an agent with two calls in flight ")
            first = ctx.http_get(SLOW_URL)
            second = ctx.http_get(SLOW_URL)
            b = await second
            a = await first
            await context.fill(f"{a}/{b} ")
            answer = await context.generate_until(max_tokens=3)
            context.free()
            return answer

        [result] = run_fleet(server, [InferletProgram(name="overlap", main=overlapper)])
        assert result.status == "finished"
        # All staged pages came home and no bookkeeping leaked.
        assert server.service().swap.num_swapped == 0
        assert not server.service().swap.is_blocked(result.instance_id)
        assert server.service().host_pool.num_used == 0
        assert (
            server.metrics.kv_pages_swapped_in == server.metrics.kv_pages_swapped_out
        )


class TestSwapExportInteraction:
    """Pinned pages (exports, prefix cache) and PCIe charge accounting."""

    SHARED = "Shared fleet system prompt, long enough to span pages comfortably. "

    def _cache_server(self, sim, *, kv_pages=96, host_pages=64):
        config = PieConfig(
            gpu=GpuConfig(num_kv_pages=kv_pages, host_kv_pages=host_pages),
            control=ControlLayerConfig(prefix_cache=True),
        )
        server = PieServer(sim, config=config)
        ToolEnvironment(sim, server.external)
        server.register_external(SLOW_URL, lambda p: "rows", ConstantLatency(0.3))
        return server

    def test_prefix_cached_pages_are_never_suspended(self):
        sim = Simulator(seed=1)
        server = self._cache_server(sim)
        service = server.service()

        async def producer(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill(self.SHARED + "producer task. ")
            await ctx.http_get(SLOW_URL)  # blocks; proactive swap kicks in
            answer = await context.generate_until(max_tokens=2)
            context.free()
            return answer

        [result] = run_fleet(server, [InferletProgram(name="prod", main=producer)])
        assert result.status == "finished"
        cache = service.shards[0].prefix_cache
        m = server.metrics
        registered = m.prefix_cache_inserted_pages
        assert registered > 0
        # The proactive suspend moved *something* (the partial tail page),
        # but every cache-pinned page stayed resident on the device.
        assert m.swap_outs > 0
        assert 0 < m.kv_pages_swapped_out < registered
        assert cache.cached_pages() == registered

    def test_exported_pages_excluded_from_swappable_count(self):
        sim = Simulator(seed=0)
        server = make_server(sim, kv_pages=32, host_pages=32)
        resources = server.service().resources
        resources.create_space("probe")
        handles = resources.alloc_kv_pages("probe", 4)
        assert resources.swappable_kv_count("probe") == 4
        resources.export_kv_pages("probe", handles[:3], "pinned")
        assert resources.swappable_kv_count("probe") == 1
        assert resources.swap_out_kv("probe") == 1  # only the private page
        resources.release_export("pinned")
        assert resources.swappable_kv_count("probe") == 3
        resources.swap_in_kv("probe")
        resources.destroy_space("probe")

    def test_fault_in_after_resume_charges_pcie_exactly_once(self):
        sim = Simulator(seed=2)
        server = make_server(sim, kv_pages=64, host_pages=64)

        async def one_call(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("an agent with exactly one blocking tool call ")
            observation = await ctx.http_get(SLOW_URL)
            # Several post-resume commands resolve the same pages: none may
            # trigger a second (already-resident) fault-in.
            await context.fill(f"obs:{observation} ")
            answer = await context.generate_until(max_tokens=3)
            context.free()
            return answer

        [result] = run_fleet(server, [InferletProgram(name="once", main=one_call)])
        assert result.status == "finished"
        m = server.metrics
        assert m.swap_outs == 1
        assert m.swap_ins == 1
        assert m.kv_pages_swapped_in == m.kv_pages_swapped_out
        kinds = server.service().pool.aggregate_stats().batches_by_kind
        assert kinds.get("swap_out") == 1
        assert kinds.get("swap_in") == 1  # the PCIe restore hit the device once


class TestRouterSwapAwareness:
    def test_least_loaded_ignores_swapped_instances(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=2)
        swapped = {"a"}
        router = Router(
            server.service().shards,
            policy="least_loaded",
            is_swapped=lambda iid: iid in swapped,
        )
        assert router.place("a").index == 0
        # "a" is suspended: shard 0 counts as empty again, so "b" and "c"
        # land on 0 and 1 rather than both avoiding 0.
        assert router.place("b").index == 0
        assert router.place("c").index == 1
