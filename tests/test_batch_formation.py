"""Batch-formation unit tests: merge equivalence and the t_only timer fix.

Two regressions guarded here:

* ``_merge_runs`` (and ``CommandQueue.head_run``) replaced their O(n^2)
  pairwise ``conflicts_with`` scans with accumulated write-set
  intersections — the merge output must be *identical* to the reference
  (pairwise) implementation on seeded random queue populations;
* ``_arm_timeout_flush`` used to schedule a fresh sim event on **every**
  submit (a timer storm under load); it now keeps at most one armed timer,
  re-armed after each flush for the oldest still-pending command.
"""

import random

from repro.core import InferletProgram, PieServer
from repro.core.batching import _merge_runs
from repro.core.command_queue import Command, CommandQueue
from repro.core.config import PieConfig, SchedulerConfig
from repro.sim import Simulator
from repro.support import Context, SamplingParams

KINDS = ("forward", "sample", "copy_kv")


def _reference_merge(runs, max_batch_rows):
    """The pre-optimisation _merge_runs, kept verbatim as the oracle."""
    ordered_runs = sorted(
        runs, key=lambda run: (-run[0].priority, run[0].issue_time, run[0].command_id)
    )
    merged = []
    total_rows = 0
    for run in ordered_runs:
        for command in run:
            if total_rows + command.rows > max_batch_rows:
                return merged
            if any(command.conflicts_with(existing) for existing in merged):
                break
            merged.append(command)
            total_rows += command.rows
    return merged


def _random_population(rng, n_queues=12, max_run=8):
    """Random same-kind runs with overlapping write sets and priorities."""
    runs = []
    for q in range(n_queues):
        kind = rng.choice(KINDS)
        run = []
        priority = rng.randint(-2, 2)
        for i in range(rng.randint(1, max_run)):
            writes = frozenset(
                ("kv", rng.randint(0, 30)) for _ in range(rng.randint(0, 3))
            )
            run.append(
                Command(
                    kind=kind,
                    inferlet_id=f"inf{q}",
                    payload={},
                    future=None,
                    issue_time=rng.random(),
                    queue_key=q,
                    priority=priority,
                    rows=rng.randint(1, 3),
                    writes=writes,
                )
            )
        runs.append(run)
    return runs


def test_merge_runs_matches_reference_on_seeded_populations():
    rng = random.Random(1234)
    for trial in range(200):
        runs = _random_population(rng)
        max_rows = rng.randint(1, 24)
        fast = _merge_runs([list(r) for r in runs], max_rows)
        slow = _reference_merge([list(r) for r in runs], max_rows)
        assert fast == slow, f"trial {trial} diverged"


def test_head_run_set_based_conflicts_match_pairwise():
    rng = random.Random(99)
    for trial in range(100):
        queue = CommandQueue(key="q", model="m", owner="o")
        commands = []
        for i in range(rng.randint(1, 12)):
            writes = frozenset(
                ("kv", rng.randint(0, 8)) for _ in range(rng.randint(0, 2))
            )
            command = Command(
                kind=rng.choice(KINDS),
                inferlet_id="o",
                payload={},
                future=None,
                issue_time=float(i),
                writes=writes,
            )
            commands.append(command)
            queue.push(command)
        limit = rng.randint(1, 12)
        run = queue.head_run(limit)
        # Reference: longest same-kind prefix with pairwise write-write check.
        expected = []
        for command in commands:
            if len(expected) >= limit:
                break
            if expected and command.kind != expected[0].kind:
                break
            if any(command.conflicts_with(existing) for existing in expected):
                break
            expected.append(command)
        assert run == expected, f"trial {trial} diverged"


def _t_only_server(sim):
    config = PieConfig(scheduler=SchedulerConfig(policy="t_only", t_timeout_ms=5.0))
    return PieServer(sim, config=config)


def _make_agent(index):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(f"Agent {index} reporting in with a short prompt. ")
        await context.generate_until(max_tokens=6)
        context.free()
        return context.generated_ids

    return InferletProgram(name=f"tonly{index}", main=main)


def test_t_only_arms_one_timer_not_one_per_submit():
    """The timer-storm regression: flush events scheduled must scale with
    the number of flushes, not with the number of submitted commands."""
    sim = Simulator(seed=5)
    server = _t_only_server(sim)
    scheduler = server.service().scheduler

    # Count the actual sim events scheduled for the flush callback.
    scheduled = {"flush_events": 0}
    original_schedule = sim.schedule

    def counting_schedule(delay, callback, *args):
        if getattr(callback, "__name__", "") == "_timeout_flush":
            scheduled["flush_events"] += 1
        return original_schedule(delay, callback, *args)

    sim.schedule = counting_schedule

    programs = [_make_agent(i) for i in range(8)]
    for program in programs:
        server.register_program(program)

    async def run_all():
        tasks = [sim.create_task(server.run_inferlet(p.name)) for p in programs]
        return await sim.gather(tasks)

    results = sim.run_until_complete(run_all())
    assert all(r.status == "finished" for r in results)

    commands = scheduler.stats.commands_dispatched
    flushes = scheduled["flush_events"]
    assert flushes == scheduler.timeout_timers_armed
    assert commands > 50  # the workload is big enough to have stormed before
    # Old behaviour scheduled >= one event per submitted command; the
    # coalesced timer schedules at most one per flush cycle.
    assert flushes < commands / 2, (flushes, commands)
    # And the policy still drains everything within its timeout cadence.
    assert scheduler.total_pending == 0
