"""Priority dispatch ordering: live queue priority and launch priority.

Covers the stale-priority regression (``set_queue_priority`` after enqueue
must affect already-queued commands, since batch formation reads the live
queue priority), the launch-time ``priority`` plumbing
(``PieClient.launch(priority=...)`` seeds every queue the inferlet
creates), end-to-end dispatch ordering between contending queues on one
device, and the aging bound on starvation under the QoS service.
"""

from repro.core import InferletProgram, PieClient, PieServer, TenantSpec
from repro.core.batching import form_candidate_batches
from repro.core.command_queue import Command, CommandQueue
from repro.core.config import ControlLayerConfig, PieConfig
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.support import Context, SamplingParams


def _command(sim, kind="forward", issue_time=0.0):
    return Command(
        kind=kind,
        inferlet_id="test",
        payload={},
        future=sim.create_future(),
        issue_time=issue_time,
    )


class TestStalePriorityRegression:
    def test_priority_raised_after_enqueue_reorders_commands(self):
        """The regression: push snapshots priority, so a later
        set_queue_priority used to leave queued commands at their old rank."""
        sim = Simulator()
        low = CommandQueue(key="low", model="m", owner="a", priority=0)
        late = CommandQueue(key="late", model="m", owner="b", priority=0)
        low.push(_command(sim, issue_time=0.0))
        late.push(_command(sim, issue_time=1.0))
        # Raise the priority *after* the command was enqueued.
        late.priority = 5
        batches = form_candidate_batches([low, late], max_batch_rows=8)
        commands = batches["forward"].commands
        assert commands[0].queue_key == "late"
        # The live value was also refreshed onto the command snapshot.
        assert commands[0].priority == 5

    def test_priority_lowered_after_enqueue(self):
        sim = Simulator()
        first = CommandQueue(key="first", model="m", owner="a", priority=5)
        second = CommandQueue(key="second", model="m", owner="b", priority=0)
        first.push(_command(sim, issue_time=0.0))
        second.push(_command(sim, issue_time=1.0))
        first.priority = -1  # demoted after enqueue
        batches = form_candidate_batches([first, second], max_batch_rows=8)
        assert batches["forward"].commands[0].queue_key == "second"

    def test_truncation_drops_live_lowest_priority(self):
        sim = Simulator()
        queues = []
        for index in range(3):
            queue = CommandQueue(key=f"q{index}", model="m", owner="o", priority=0)
            queue.push(_command(sim, issue_time=float(index)))
            queues.append(queue)
        queues[2].priority = 9  # promoted after enqueue
        batches = form_candidate_batches(queues, max_batch_rows=2)
        keys = [c.queue_key for c in batches["forward"].commands]
        assert keys == ["q2", "q0"]  # promoted queue survives truncation


def _decoder(name: str, n_tokens: int, results: dict):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(f"prompt for {name} ")
        text = await context.generate_until(max_tokens=n_tokens)
        context.free()
        results[name] = ctx._instance.metrics.first_token_at
        return text

    return InferletProgram(name=name, main=main)


class TestEndToEndPriorityDispatch:
    def run_pair(self, high_priority: int):
        """Two decoders racing on a 1-row-batch device: every dispatch
        round is a head-to-head merge, so queue priority decides who is
        truncated out.  'low' is requested first (its commands carry the
        earlier issue times); 'high' carries ``high_priority``.  Returns
        first-token times keyed by name."""
        sim = Simulator(seed=0)
        config = PieConfig(gpu=GpuConfig(max_batch_rows=1))
        server = PieServer(sim, config=config)
        results = {}
        server.register_program(_decoder("low", 6, results))
        server.register_program(_decoder("high", 6, results))
        client = PieClient(sim, server, rtt_ms=0.0)

        async def run_all():
            first = sim.create_task(client.launch_and_wait("low", priority=0))
            second = sim.create_task(
                client.launch_and_wait("high", priority=high_priority)
            )
            await sim.gather([first, second])

        sim.run_until_complete(run_all())
        return results

    def test_high_priority_queue_dispatches_first(self):
        results = self.run_pair(high_priority=5)
        # Despite being requested second, the high-priority inferlet wins
        # every contended 1-row batch and reaches its first token earlier.
        assert results["high"] < results["low"]

    def test_equal_priority_preserves_arrival_order(self):
        results = self.run_pair(high_priority=0)
        assert results["low"] < results["high"]

    def test_launch_priority_seeds_created_queues(self):
        sim = Simulator(seed=0)
        server = PieServer(sim)
        seen = {}

        async def main(ctx):
            queue = ctx.create_queue()
            seen["priority"] = queue.priority
            ctx.destroy_queue(queue)
            return None

        server.register_program(InferletProgram(name="probe", main=main))
        sim.run_until_complete(server.run_inferlet("probe", priority=7))
        assert seen["priority"] == 7


class TestAgingBoundsStarvation:
    def run_stream(self, aging_ms: float) -> dict:
        """One batch-class decoder under a continuous interactive stream.

        Returns the batch job's first-token time and the stream end time;
        slack scoring alone would starve the batch job until the device
        has idle gaps, the aging bound forces it through earlier."""
        sim = Simulator(seed=0)
        config = PieConfig(
            gpu=GpuConfig(max_batch_rows=1),
            control=ControlLayerConfig(
                qos=True,
                qos_aging_ms=aging_ms,
                tenants=(
                    TenantSpec(name="chat", priority_class="interactive"),
                    TenantSpec(name="jobs", priority_class="batch"),
                ),
            ),
        )
        server = PieServer(sim, config=config)
        done = {}

        async def batch_main(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("long background job ")
            await context.generate_until(max_tokens=8)
            context.free()
            done["batch_first_token_at"] = ctx._instance.metrics.first_token_at
            return "done"

        async def chat_main(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("hi ")
            await context.generate_until(max_tokens=2)
            context.free()
            return "ok"

        server.register_program(InferletProgram(name="job", main=batch_main))
        for i in range(14):
            server.register_program(
                InferletProgram(name=f"turn{i}", main=chat_main)
            )

        async def staggered(name, delay):
            await sim.sleep(delay)
            return await server.run_inferlet(name, tenant="chat")

        async def run_all():
            tasks = [sim.create_task(server.run_inferlet("job", tenant="jobs"))]
            for i in range(14):
                tasks.append(sim.create_task(staggered(f"turn{i}", 0.03 * i)))
            results = await sim.gather(tasks)
            done["stream_finished_at"] = sim.now
            return results

        results = sim.run_until_complete(run_all())
        assert all(r.status == "finished" for r in results)
        return done

    def test_aging_bounds_batch_class_starvation(self):
        aged = self.run_stream(aging_ms=60.0)
        starved = self.run_stream(aging_ms=60_000.0)
        # With a tight aging bound the batch job's commands are forced
        # through the interactive stream; with an effectively infinite
        # bound pure slack scoring leaves it to the queue's mercy.
        assert aged["batch_first_token_at"] < starved["batch_first_token_at"]
        # And the bound is meaningful: the first token lands while the
        # stream is still arriving (14 turns * 30 ms of arrivals).
        assert aged["batch_first_token_at"] < 0.3
        assert aged["stream_finished_at"] > 0.42
