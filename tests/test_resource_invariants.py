"""Property-based invariants for the ResourceManager.

A seeded random interleaving of ~500 allocate / deallocate / export /
import / release / swap-out / swap-in / space-lifecycle operations, with
conservation checked after every step:

* no page leaks and no double frees — ``free + allocated == capacity`` on
  the device pool and ``free + used == capacity`` on the host pool;
* no refcount underflow — every mapped physical page has refcount >= 1;
* a full teardown returns every resource: both pools end empty.

Deliberately illegal operations (double free, foreign handles, imports of
unknown exports) are also thrown in and must raise ``ResourceError``
without perturbing any invariant.

The harness models the chaos plane's failure modes too: it runs *two*
device managers over one shared host pool (the per-node host tier), and
the op mix includes the crash-relaunch migration the failover sweep
performs (detach a fully swapped space from a dead device, adopt it on
the survivor with fresh embed slots) and the transient pin/unpin
sequence the transfer scheduler applies to staged pages when a
destination shard dies mid-stream.
"""

import random

import pytest

from repro.core.handles import KvPage
from repro.core.resources import ResourceManager
from repro.errors import OutOfResourcesError, ResourceError
from repro.gpu.config import GpuConfig
from repro.gpu.host_pool import HostMemoryPool
from repro.gpu.memory import DeviceMemory
from repro.model.registry import ModelRegistry

KV_CAPACITY = 24
EMB_CAPACITY = 32
HOST_CAPACITY = 16
N_OPS = 500


def build_manager(host_pool=None):
    config = ModelRegistry(["llama-sim-1b"]).get("llama-sim-1b").config
    gpu = GpuConfig(
        num_kv_pages=KV_CAPACITY,
        num_embed_slots=EMB_CAPACITY,
        host_kv_pages=HOST_CAPACITY,
    )
    memory = DeviceMemory(config, gpu)
    host_pool = host_pool or HostMemoryPool(config, gpu)
    return ResourceManager(memory, model_name="llama-sim-1b", host_pool=host_pool)


class Harness:
    """Shadow state + weighted random operations over two ResourceManagers.

    Two "devices" share one host pool, exactly as a service's shards
    share the per-node host tier; ``home`` tracks which device each
    owner's space currently lives on so the crash-relaunch op can move
    fully swapped spaces between them.
    """

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.rm0 = build_manager()
        self.rm1 = build_manager(host_pool=self.rm0.host_pool)
        self.home = {}  # owner -> the ResourceManager holding its space
        self.kv = {}  # owner -> list of live KvPage handles
        self.emb = {}  # owner -> list of live Embed handles
        self.exports = []  # (name, rm) pairs currently live
        self.next_owner = 0
        self.next_export = 0

    @property
    def rm(self):
        """The primary device (kept for assertions in older tests)."""
        return self.rm0

    def _rm(self, owner):
        return self.home[owner]

    # -- operations --------------------------------------------------------

    def op_create_space(self):
        owner = f"inferlet-{self.next_owner}"
        self.next_owner += 1
        rm = self.rng.choice((self.rm0, self.rm1))
        rm.create_space(owner)
        self.home[owner] = rm
        self.kv[owner] = []
        self.emb[owner] = []

    def op_destroy_space(self):
        owner = self._pick_owner()
        if owner is None:
            return
        self._rm(owner).destroy_space(owner)
        del self.home[owner]
        del self.kv[owner]
        del self.emb[owner]

    def op_alloc_kv(self):
        owner = self._pick_owner()
        if owner is None:
            return
        count = self.rng.randint(1, 4)
        try:
            self.kv[owner].extend(self._rm(owner).alloc_kv_pages(owner, count))
        except OutOfResourcesError:
            pass  # legal refusal; invariants must still hold

    def op_dealloc_kv(self):
        owner = self._pick_owner()
        if owner is None or not self.kv[owner]:
            return
        count = self.rng.randint(1, len(self.kv[owner]))
        victims = [
            self.kv[owner].pop(self.rng.randrange(len(self.kv[owner])))
            for _ in range(count)
        ]
        self._rm(owner).dealloc_kv_pages(owner, victims)

    def op_alloc_emb(self):
        owner = self._pick_owner()
        if owner is None:
            return
        try:
            self.emb[owner].extend(
                self._rm(owner).alloc_embeds(owner, self.rng.randint(1, 3))
            )
        except OutOfResourcesError:
            pass

    def op_dealloc_emb(self):
        owner = self._pick_owner()
        if owner is None or not self.emb[owner]:
            return
        handle = self.emb[owner].pop(self.rng.randrange(len(self.emb[owner])))
        self._rm(owner).dealloc_embeds(owner, [handle])

    def op_export(self):
        owner = self._pick_owner()
        if owner is None or not self.kv[owner]:
            return
        rm = self._rm(owner)
        resident = [h for h in self.kv[owner] if h.vid in rm._spaces[owner].kv_map]
        if not resident:
            return
        count = self.rng.randint(1, min(3, len(resident)))
        name = f"export-{self.next_export}"
        self.next_export += 1
        rm.export_kv_pages(owner, self.rng.sample(resident, count), name)
        self.exports.append((name, rm))

    def op_import(self):
        owner = self._pick_owner()
        if owner is None:
            return
        rm = self._rm(owner)
        local = [name for name, export_rm in self.exports if export_rm is rm]
        if not local:
            return
        name = self.rng.choice(local)
        self.kv[owner].extend(rm.import_kv_pages(owner, name))

    def op_release_export(self):
        if not self.exports:
            return
        name, rm = self.exports.pop(self.rng.randrange(len(self.exports)))
        rm.release_export(name)

    def op_swap_out(self):
        owner = self._pick_owner()
        if owner is None:
            return
        self._rm(owner).swap_out_kv(owner)

    def op_swap_in(self):
        owner = self._pick_owner()
        if owner is None:
            return
        rm = self._rm(owner)
        if rm.kv_pages_swapped_by(owner) <= rm.kv_pages_free:
            rm.swap_in_kv(owner)

    def op_pin_unpin(self):
        """The transfer scheduler's staged-page sequence under shard death:
        pin a resident page (staging), then unpin it (stream re-plan)."""
        owner = self._pick_owner()
        if owner is None:
            return
        rm = self._rm(owner)
        resident = sorted(rm._spaces[owner].kv_map.values())
        if not resident:
            return
        pid = self.rng.choice(resident)
        before = rm.kv_refcount(pid)
        rm.pin_kv(pid)
        assert rm.kv_refcount(pid) == before + 1
        rm.unpin_kv(pid)
        assert rm.kv_refcount(pid) == before

    def op_crash_relaunch(self):
        """The failover sweep's rescue: a fully swapped space detaches
        from its (dead) device and is adopted on the other one, swapped
        host slots moving as-is and embed slots re-provisioned fresh."""
        owner = self._pick_owner()
        if owner is None:
            return
        src = self._rm(owner)
        dst = self.rm1 if src is self.rm0 else self.rm0
        src.swap_out_kv(owner)  # stage whatever is exclusively owned
        if src.kv_mapping(owner):
            return  # shared/unswappable pages keep it device-resident
        emb_vids = sorted(src.emb_mapping(owner))
        if dst.memory.embeds.num_free < len(emb_vids):
            return
        _, _, swapped_kv, next_kv_vid, next_emb_vid = (
            src.detach_space_for_migration(owner)
        )
        emb_map = dict(zip(emb_vids, dst.memory.embeds.allocate(len(emb_vids))))
        dst.adopt_migrated_space(
            owner, {}, emb_map, swapped_kv, next_kv_vid, next_emb_vid
        )
        self.home[owner] = dst

    def op_illegal(self):
        """Deliberate misuse must raise cleanly and change nothing."""
        owner = self._pick_owner()
        if owner is None:
            return
        rm = self._rm(owner)
        choice = self.rng.randrange(3)
        if choice == 0 and self.kv[owner]:
            handle = self.rng.choice(self.kv[owner])
            resident = handle.vid in rm._spaces[owner].kv_map
            if resident:
                rm.dealloc_kv_pages(owner, [handle])
                self.kv[owner].remove(handle)
                with pytest.raises(ResourceError):
                    rm.dealloc_kv_pages(owner, [handle])  # double free
        elif choice == 1:
            with pytest.raises(ResourceError):
                rm.import_kv_pages(owner, "no-such-export")
        elif choice == 2 and self.kv[owner]:
            foreign = KvPage(
                vid=self.kv[owner][0].vid,
                owner="someone-else",
                page_size=rm.page_size,
                model=rm.model_name,
            )
            with pytest.raises(ResourceError):
                rm.resolve_kv(owner, foreign)

    # -- helpers -----------------------------------------------------------

    def _pick_owner(self):
        owners = sorted(self.kv)
        return self.rng.choice(owners) if owners else None

    # -- invariants --------------------------------------------------------

    def check_invariants(self):
        for rm in (self.rm0, self.rm1):
            kv_pool = rm.memory.kv_pages
            emb_pool = rm.memory.embeds
            # Conservation on every device pool.
            assert kv_pool.num_free + kv_pool.num_allocated == KV_CAPACITY
            assert emb_pool.num_free + emb_pool.num_allocated == EMB_CAPACITY
            # Device-resident + host-resident pages of every space are
            # disjoint and every mapped physical page carries >= 1 ref.
            for owner, space in rm._spaces.items():
                assert not (set(space.kv_map) & set(space.swapped_kv)), owner
                for pid in space.kv_map.values():
                    assert rm.kv_refcount(pid) >= 1
        # Conservation on the shared host tier.
        host = self.rm0.host_pool
        assert host.num_free + host.num_used == HOST_CAPACITY
        # Exported pages stay referenced even without a live owner mapping.
        for name, rm in self.exports:
            for pid in rm.export_info(name).physical_ids:
                assert rm.kv_refcount(pid) >= 1

    def teardown(self):
        for name, rm in list(self.exports):
            rm.release_export(name)
        for owner in list(self.kv):
            self._rm(owner).destroy_space(owner)


OPS = (
    ("create_space", 6),
    ("destroy_space", 2),
    ("alloc_kv", 14),
    ("dealloc_kv", 8),
    ("alloc_emb", 6),
    ("dealloc_emb", 4),
    ("export", 5),
    ("import", 5),
    ("release_export", 3),
    ("swap_out", 6),
    ("swap_in", 6),
    ("pin_unpin", 3),
    ("crash_relaunch", 4),
    ("illegal", 3),
)


@pytest.mark.parametrize("seed", [0, 1, 2026])
def test_randomised_interleaving_preserves_invariants(seed):
    harness = Harness(seed)
    harness.op_create_space()
    names = [name for name, weight in OPS for _ in range(weight)]
    for _ in range(N_OPS):
        getattr(harness, f"op_{harness.rng.choice(names)}")()
        harness.check_invariants()
    # Full teardown: every page, slot and host copy comes home exactly once.
    harness.teardown()
    for rm in (harness.rm0, harness.rm1):
        assert rm.memory.kv_pages.num_allocated == 0
        assert rm.memory.embeds.num_allocated == 0
        assert rm.memory.kv_pages.num_free == KV_CAPACITY
        assert rm.list_exports() == []
    assert harness.rm.host_pool.num_used == 0
