"""End-to-end tests of the Pie core: server, inferlets, API, support library."""

import numpy as np
import pytest

from repro.core import InferletProgram, PieClient, PieServer
from repro.core.config import PieConfig
from repro.model import get_model_config
from repro.model.transformer import TinyTransformer
from repro.sim import Simulator
from repro.support import Context, SamplingParams


@pytest.fixture()
def sim():
    return Simulator(seed=11)


@pytest.fixture()
def server(sim):
    return PieServer(sim, models=["llama-sim-1b"])


def make_completion_program(prompt, max_tokens):
    async def main(ctx):
        context = Context(ctx)
        await context.fill(prompt)
        text = await context.generate_until(max_tokens=max_tokens)
        ctx.send(text)
        context.free()
        return text

    return InferletProgram(name="text_completion_test", main=main, source_loc=38)


def reference_greedy_completion(prompt, max_tokens, model_name="llama-sim-1b"):
    """Token-exact reference: run the raw transformer autoregressively."""
    config = get_model_config(model_name)
    model = TinyTransformer(config)
    from repro.model import ByteTokenizer
    from repro.model.sampling import top_k_dist

    tokenizer = ByteTokenizer(config.vocab_size)
    tokens = tokenizer.encode(prompt)
    import numpy as np
    from repro.model.transformer import KvContext

    keys = [np.zeros((0, config.n_kv_heads, config.d_head), np.float32) for _ in range(config.n_layers)]
    values = [np.zeros((0, config.n_kv_heads, config.d_head), np.float32) for _ in range(config.n_layers)]
    positions = np.zeros(0, dtype=np.int64)

    def run(token_ids, pos_list):
        nonlocal keys, values, positions
        ctx = KvContext(
            keys=[k.copy() for k in keys],
            values=[v.copy() for v in values],
            positions=positions.copy(),
            visible=np.ones(len(positions), dtype=bool),
        )
        emb = model.embed_tokens(token_ids, pos_list)
        res = model.forward(emb, pos_list, ctx)
        keys = [np.concatenate([keys[l], res.new_keys[l]]) for l in range(config.n_layers)]
        values = [np.concatenate([values[l], res.new_values[l]]) for l in range(config.n_layers)]
        positions = np.concatenate([positions, np.asarray(pos_list, dtype=np.int64)])
        return res.hidden[-1]

    hidden = run(tokens, list(range(len(tokens))))
    generated = []
    for step in range(max_tokens):
        dist = top_k_dist(model.logits(hidden)[0], k=256)
        token = dist.max_index()
        generated.append(token)
        hidden = run([token], [len(tokens) + step])
    return tokenizer.decode(generated)


class TestTextCompletionEndToEnd:
    def test_completion_runs_and_returns_text(self, sim, server):
        program = make_completion_program("Hello, ", 8)
        server.register_program(program)
        result = sim.run_until_complete(server.run_inferlet(program.name))
        assert result.status == "finished"
        assert isinstance(result.result, str)
        assert len(result.messages) == 1
        assert result.messages[0] == result.result

    def test_greedy_output_matches_raw_transformer(self, sim, server):
        """Pie's paged-KV generation must be token-exact vs a fused reference."""
        program = make_completion_program("Hi", 6)
        server.register_program(program)
        result = sim.run_until_complete(server.run_inferlet(program.name))
        assert result.result == reference_greedy_completion("Hi", 6)

    def test_latency_close_to_tpot_budget(self, sim, server):
        max_tokens = 10
        program = make_completion_program("Hello, ", max_tokens)
        server.register_program(program)
        result = sim.run_until_complete(server.run_inferlet(program.name))
        config = get_model_config("llama-sim-1b")
        # Each generated token costs roughly decode + embed + sample handler time.
        per_token_floor = config.cost.decode_ms_base / 1e3
        per_token_ceiling = (config.cost.decode_ms_base + 6.0) / 1e3
        assert result.latency > max_tokens * per_token_floor
        assert result.latency < max_tokens * per_token_ceiling + 0.2

    def test_metrics_recorded(self, sim, server):
        program = make_completion_program("Hello, ", 5)
        server.register_program(program)
        result = sim.run_until_complete(server.run_inferlet(program.name))
        metrics = server.metrics.get(result.instance_id)
        assert metrics.output_tokens == 5
        assert metrics.inference_layer_calls > 0
        assert metrics.control_layer_calls > 0
        assert metrics.status == "finished"

    def test_resources_released_after_completion(self, sim, server):
        program = make_completion_program("Hello, ", 5)
        server.register_program(program)
        sim.run_until_complete(server.run_inferlet(program.name))
        sim.run()
        service = server.service()
        assert service.memory.kv_pages.num_allocated == 0
        assert service.memory.embeds.num_allocated == 0

    def test_client_launch_pays_network_rtt(self, sim, server):
        program = make_completion_program("Hello, ", 3)
        server.register_program(program)
        client = PieClient(sim, server, rtt_ms=25.0)
        result = sim.run_until_complete(client.launch_and_wait(program.name))
        assert result.status == "finished"
        # At least one full RTT is paid end to end.
        assert result.latency >= 0.025

    def test_multiple_models_hosted(self, sim):
        server = PieServer(sim, models=["llama-sim-1b", "llama-sim-3b"])

        async def main(ctx):
            return ctx.available_models()

        server.register_program(InferletProgram(name="list_models", main=main))
        result = sim.run_until_complete(server.run_inferlet("list_models"))
        assert result.result == ["llama-sim-1b", "llama-sim-3b"]


class TestConcurrentInferlets:
    def test_many_inferlets_share_the_device(self, sim, server):
        program = make_completion_program("Hello, ", 4)
        server.register_program(program)

        async def run_all():
            tasks = [
                sim.create_task(server.run_inferlet(program.name)) for _ in range(8)
            ]
            return await sim.gather(tasks)

        results = sim.run_until_complete(run_all())
        assert len(results) == 8
        assert all(r.status == "finished" for r in results)
        # Horizontal batching should have produced multi-command batches.
        assert server.service().scheduler.stats.mean_batch_size > 1.0

    def test_outputs_identical_across_concurrency(self, sim, server):
        """Batching must not change results: same prompt -> same greedy text."""
        program = make_completion_program("abc", 5)
        server.register_program(program)

        async def run_all():
            tasks = [sim.create_task(server.run_inferlet(program.name)) for _ in range(4)]
            return await sim.gather(tasks)

        results = sim.run_until_complete(run_all())
        texts = {r.result for r in results}
        assert len(texts) == 1
        assert texts.pop() == reference_greedy_completion("abc", 5)

    def test_throughput_improves_with_batching(self, sim):
        """Adaptive batching beats eager (no batching) on concurrent load."""

        def run_with_policy(policy):
            local_sim = Simulator(seed=3)
            from repro.core.config import SchedulerConfig

            config = PieConfig(scheduler=SchedulerConfig(policy=policy))
            local_server = PieServer(local_sim, models=["llama-sim-1b"], config=config)
            program = make_completion_program("Hello, ", 4)
            local_server.register_program(program)

            async def run_all():
                tasks = [
                    local_sim.create_task(local_server.run_inferlet(program.name))
                    for _ in range(8)
                ]
                return await local_sim.gather(tasks)

            local_sim.run_until_complete(run_all())
            return local_sim.now

        adaptive_time = run_with_policy("adaptive")
        eager_time = run_with_policy("eager")
        assert adaptive_time < eager_time


class TestContextFeatures:
    def test_fork_shares_prefix_and_diverges(self, sim, server):
        async def main(ctx):
            root = Context(ctx)
            await root.fill("The answer is")
            left = root.fork()
            right = root.fork()
            await left.refresh_hidden()
            await right.refresh_hidden()
            await left.append_token(65)   # 'A'
            await right.append_token(66)  # 'B'
            left_dist = await left.next_dist()
            right_dist = await right.next_dist()
            return (
                left.num_cached_tokens,
                right.num_cached_tokens,
                root.num_cached_tokens,
                left_dist.max_index() == right_dist.max_index(),
            )

        server.register_program(InferletProgram(name="fork_test", main=main))
        left_tokens, right_tokens, root_tokens, same = sim.run_until_complete(
            server.run_inferlet("fork_test")
        ).result
        assert left_tokens == right_tokens == root_tokens + 1
        assert not same  # different last tokens -> different next distributions

    def test_mask_changes_next_distribution(self, sim, server):
        async def main(ctx):
            context = Context(ctx)
            await context.fill("Hello, world")
            before = await context.next_dist()
            await context.mask_token_range(0, 5)
            await context.refresh_hidden()
            after = await context.next_dist()
            return before.max_index(), after.max_index(), before.as_dict(), after.as_dict()

        server.register_program(InferletProgram(name="mask_test", main=main))
        before_top, after_top, before_dist, after_dist = sim.run_until_complete(
            server.run_inferlet("mask_test")
        ).result
        assert before_dist != after_dist

    def test_export_import_prefix_between_inferlets(self, sim, server):
        prompt = "Shared system prompt."

        async def exporter(ctx):
            context = Context(ctx)
            await context.fill(prompt)
            context.export_prefix("shared-prefix")
            return context.token_ids

        async def importer(ctx):
            queue = ctx.create_queue()
            prefix_tokens = ctx.tokenize(queue, prompt)
            context = await Context.from_export(ctx, "shared-prefix", prefix_tokens)
            token = await context.generate_once()
            return token

        async def baseline(ctx):
            context = Context(ctx)
            await context.fill(prompt)
            return await context.generate_once()

        server.register_program(InferletProgram(name="exporter", main=exporter))
        server.register_program(InferletProgram(name="importer", main=importer))
        server.register_program(InferletProgram(name="baseline", main=baseline))

        sim.run_until_complete(server.run_inferlet("exporter"))
        imported_token = sim.run_until_complete(server.run_inferlet("importer")).result
        baseline_token = sim.run_until_complete(server.run_inferlet("baseline")).result
        assert imported_token == baseline_token

    def test_temperature_sampling_is_reproducible(self, sim, server):
        async def main(ctx):
            context = Context(ctx, sampling=SamplingParams(temperature=1.0, top_k=16))
            await context.fill("Random: ")
            return await context.generate_until(max_tokens=5)

        server.register_program(InferletProgram(name="sample_test", main=main))
        first = sim.run_until_complete(server.run_inferlet("sample_test")).result

        sim2 = Simulator(seed=11)
        server2 = PieServer(sim2, models=["llama-sim-1b"])
        server2.register_program(InferletProgram(name="sample_test", main=main))
        second = sim2.run_until_complete(server2.run_inferlet("sample_test")).result
        assert first == second


class TestApiSurface:
    def test_trait_gating(self, sim, server):
        """Using an unsupported trait raises TraitNotSupportedError."""
        from repro.errors import TraitNotSupportedError

        async def main(ctx):
            queue = ctx.create_queue()
            embeds = ctx.alloc_emb(queue, 1)
            try:
                ctx.embed_img(queue, b"\x00" * 10, embeds)
            except TraitNotSupportedError:
                return "rejected"
            return "accepted"

        server.register_program(InferletProgram(name="trait_test", main=main))
        assert sim.run_until_complete(server.run_inferlet("trait_test")).result == "rejected"

    def test_send_receive_roundtrip_with_client(self, sim, server):
        async def main(ctx):
            question = await ctx.receive()
            ctx.send(f"echo:{question}")
            return "done"

        server.register_program(InferletProgram(name="echo", main=main))
        client = PieClient(sim, server, rtt_ms=10.0)

        async def scenario():
            instance = await client.launch("echo")
            await client.send(instance, "ping")
            reply = await client.receive(instance)
            await client.wait(instance)
            return reply

        assert sim.run_until_complete(scenario()) == "echo:ping"

    def test_http_get_uses_registered_endpoint(self, sim, server):
        server.register_external("http://tools/search", lambda payload: "search-result")

        async def main(ctx):
            return await ctx.http_get("http://tools/search")

        server.register_program(InferletProgram(name="http_test", main=main))
        result = sim.run_until_complete(server.run_inferlet("http_test"))
        assert result.result == "search-result"
        assert server.external.total_calls() == 1

    def test_broadcast_between_inferlets(self, sim, server):
        async def listener(ctx):
            sub = ctx.subscribe("news")
            message = await sub.next_message()
            return message["data"]

        async def speaker(ctx):
            await ctx.sleep(0.01)
            return ctx.broadcast("news", "hello swarm")

        server.register_program(InferletProgram(name="listener", main=listener))
        server.register_program(InferletProgram(name="speaker", main=speaker))

        async def scenario():
            listen_task = sim.create_task(server.run_inferlet("listener"))
            speak_task = sim.create_task(server.run_inferlet("speaker"))
            return await sim.gather([listen_task, speak_task])

        listener_result, speaker_result = sim.run_until_complete(scenario())
        assert listener_result.result == "hello swarm"
        assert speaker_result.result == 1

    def test_get_arg_passed_through(self, sim, server):
        async def main(ctx):
            return ctx.get_arg()

        server.register_program(InferletProgram(name="args_test", main=main))
        result = sim.run_until_complete(server.run_inferlet("args_test", args=["--n", "5"]))
        assert result.result == ["--n", "5"]

    def test_api_call_counts_by_layer(self, sim, server):
        async def main(ctx):
            queue = ctx.create_queue()          # control
            tokens = ctx.tokenize(queue, "hi")  # inference
            embeds = ctx.alloc_emb(queue, len(tokens))  # inference
            ctx.embed_txt(queue, tokens, [0, 1], embeds)  # inference
            await ctx.synchronize(queue)        # control
            return "ok"

        server.register_program(InferletProgram(name="count_test", main=main))
        result = sim.run_until_complete(server.run_inferlet("count_test"))
        metrics = server.metrics.get(result.instance_id)
        assert metrics.control_layer_calls >= 2
        assert metrics.inference_layer_calls >= 3
