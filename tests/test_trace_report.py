"""Stall-attribution tests for repro.tools.trace_report.

Synthetic event streams pin the attribution semantics: overlap resolution
by fixed priority (swap > transfer > prefill > decode > compute > queue >
admission), decode-gap vs other classification of uncovered time, aborted
inferlets (open lifecycle spans), chunked-prefill residual queue spans —
and the invariant that the buckets partition launch-to-finish latency
exactly.  A final test round-trips a real traced cluster run through both
exporters.
"""

import math

import pytest

from repro.tools.trace_report import (
    ATTRIBUTION_BUCKETS,
    attribute_stalls,
    build_report,
    load_events,
    render_report,
)


def span(name, cat, ts, dur, inferlet="i-1", shard=0, args=None):
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "ts": ts,
        "dur": dur,
        "shard": shard,
        "inferlet": inferlet,
        "args": args,
    }


def lifecycle(ts, dur, inferlet="i-1", status="finished", open_span=False):
    args = {"status": status}
    if open_span:
        args["open"] = True
    return span("inferlet", "lifecycle", ts, dur, inferlet=inferlet, args=args)


def assert_partitions(row):
    assert math.isclose(
        sum(row["buckets"].values()), row["latency"], rel_tol=0, abs_tol=1e-9
    )


def test_simple_timeline_buckets():
    events = [
        lifecycle(0.0, 1.0),
        span("launch", "admission", 0.0, 0.1),
        span("queue:forward", "queue", 0.1, 0.2),
        span("prefill", "exec", 0.3, 0.3),
        span("decode", "exec", 0.7, 0.2),
    ]
    rows = attribute_stalls(events)
    row = rows["i-1"]
    buckets = row["buckets"]
    assert buckets["admission"] == pytest.approx(0.1)
    assert buckets["queue"] == pytest.approx(0.2)
    assert buckets["prefill"] == pytest.approx(0.3)
    assert buckets["decode"] == pytest.approx(0.2)
    # 0.6..0.7 is uncovered *between* executions -> decode_gap; 0.9..1.0 is
    # after the last execution -> other.
    assert buckets["decode_gap"] == pytest.approx(0.1)
    assert buckets["other"] == pytest.approx(0.1)
    assert_partitions(row)


def test_overlapping_swap_and_queue_spans_resolve_by_priority():
    """An inferlet can sit in a command queue while its pages fault in from
    host memory; the overlap counts once, as swap (the stronger claim)."""
    events = [
        lifecycle(0.0, 1.0),
        span("queue:forward", "queue", 0.0, 0.8),
        span("swap_stall", "swap", 0.2, 0.4),
    ]
    row = attribute_stalls(events)["i-1"]
    assert row["buckets"]["swap"] == pytest.approx(0.4)
    assert row["buckets"]["queue"] == pytest.approx(0.4)  # 0.8 minus overlap
    assert row["buckets"]["other"] == pytest.approx(0.2)
    assert_partitions(row)


def test_transfer_outranks_exec_and_queue():
    events = [
        lifecycle(0.0, 1.0),
        span("prefill", "exec", 0.0, 0.6),
        span("kv_stream", "transfer", 0.4, 0.4, args={"pages": 8}),
        span("queue:forward", "queue", 0.7, 0.3),
    ]
    row = attribute_stalls(events)["i-1"]
    assert row["buckets"]["prefill"] == pytest.approx(0.4)
    assert row["buckets"]["transfer"] == pytest.approx(0.4)
    assert row["buckets"]["queue"] == pytest.approx(0.2)
    assert_partitions(row)


def test_aborted_inferlet_open_lifecycle_span():
    """A terminated inferlet exports an open lifecycle span (args.open);
    attribution still covers launch -> abort and flags the row."""
    events = [
        lifecycle(0.0, 0.5, status="terminated", open_span=True),
        span("launch", "admission", 0.0, 0.1, args={"aborted": True}),
        span("queue:forward", "queue", 0.1, 0.4, args={"dropped": True}),
    ]
    row = attribute_stalls(events)["i-1"]
    assert row["aborted"] is True
    assert row["status"] == "terminated"
    assert row["latency"] == pytest.approx(0.5)
    assert row["buckets"]["admission"] == pytest.approx(0.1)
    assert row["buckets"]["queue"] == pytest.approx(0.4)
    assert_partitions(row)


def test_chunked_prefill_residual_queue_spans():
    """Chunked prefill ends the parent's queue span at each slice dispatch
    and opens a fresh one for the residual: alternating queue/prefill spans
    must attribute cleanly with no double counting."""
    events = [lifecycle(0.0, 1.0)]
    t = 0.0
    for _ in range(3):  # three slices: wait 0.1, execute 0.2
        events.append(span("queue:forward", "queue", t, 0.1, args={"residual_tokens": 16}))
        events.append(span("prefill", "exec", t + 0.1, 0.2, args={"tokens": 16}))
        t += 0.3
    row = attribute_stalls(events)["i-1"]
    assert row["buckets"]["queue"] == pytest.approx(0.3)
    assert row["buckets"]["prefill"] == pytest.approx(0.6)
    assert row["buckets"]["other"] == pytest.approx(0.1)  # tail after last slice
    assert_partitions(row)


def test_spans_clipped_to_lifecycle_window():
    """Spans leaking past the lifecycle window (e.g. a queue span closed by
    cleanup after the finish timestamp) are clipped, not double counted."""
    events = [
        lifecycle(0.0, 0.5),
        span("queue:forward", "queue", 0.4, 0.3),  # runs past finish
        span("prefill", "exec", 0.0, 0.2),
    ]
    row = attribute_stalls(events)["i-1"]
    assert row["buckets"]["queue"] == pytest.approx(0.1)
    assert row["latency"] == pytest.approx(0.5)
    assert_partitions(row)


def test_missing_lifecycle_falls_back_to_span_extent():
    events = [
        span("queue:forward", "queue", 1.0, 0.5),
        span("decode", "exec", 1.5, 0.5),
    ]
    row = attribute_stalls(events)["i-1"]
    assert row["status"] is None
    assert row["launch"] == pytest.approx(1.0)
    assert row["finish"] == pytest.approx(2.0)
    assert_partitions(row)


def test_report_summary_and_render():
    events = [
        lifecycle(0.0, 1.0, inferlet="a"),
        span("decode", "exec", 0.0, 1.0, inferlet="a"),
        lifecycle(0.0, 3.0, inferlet="b", status="terminated", open_span=True),
        span("queue:forward", "queue", 0.0, 3.0, inferlet="b"),
    ]
    report = build_report(events)
    summary = report["summary"]
    assert summary["inferlets"] == 2
    assert summary["aborted"] == 1
    assert summary["latency"]["p50"] == pytest.approx(1.0)
    assert summary["latency"]["p99"] == pytest.approx(3.0)
    assert summary["buckets"]["decode"]["total"] == pytest.approx(1.0)
    assert summary["buckets"]["queue"]["total"] == pytest.approx(3.0)
    text = render_report(report)
    assert "terminated*" in text  # aborted marker
    for bucket in ATTRIBUTION_BUCKETS:
        assert bucket in text


def test_real_trace_round_trips_through_both_exporters(tmp_path):
    """A traced cluster run exports to JSONL and Perfetto JSON; both load
    back into identical attribution reports, and every finished inferlet's
    buckets sum to its launch->finish latency."""
    from repro.bench.runners import make_pie_setup, run_pie_concurrent
    from repro.core.inferlet import InferletProgram
    from repro.support import Context, SamplingParams

    def make_program(index):
        async def main(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill(f"trace roundtrip prompt {index} " * 4)
            answer = await context.generate_until(max_tokens=3)
            context.free()
            return answer

        return InferletProgram(name=f"rt{index}", main=main)

    sim, server = make_pie_setup(seed=5, num_devices=2, tracing=True, trace_sample_ms=2.0)
    programs = [make_program(i) for i in range(4)]
    results, _ = run_pie_concurrent(server, programs)
    assert all(r.status == "finished" for r in results)
    jsonl_path = tmp_path / "t.jsonl"
    perfetto_path = tmp_path / "t.json"
    server.export_trace(str(jsonl_path))
    server.export_trace(str(perfetto_path))
    report_jsonl = build_report(load_events(str(jsonl_path)))
    report_perfetto = build_report(load_events(str(perfetto_path)))
    assert set(report_jsonl["inferlets"]) == set(report_perfetto["inferlets"])
    assert len(report_jsonl["inferlets"]) == 4
    for inferlet, row in report_jsonl["inferlets"].items():
        other = report_perfetto["inferlets"][inferlet]
        assert row["latency"] == pytest.approx(other["latency"])
        assert row["buckets"]["decode"] == pytest.approx(other["buckets"]["decode"])
        assert row["latency"] > 0.0
        assert_partitions(row)
        assert_partitions(other)
