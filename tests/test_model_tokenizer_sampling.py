"""Tests for the tokenizer, sampling utilities, model configs and registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.model import (
    ByteTokenizer,
    ModelRegistry,
    MODEL_CONFIGS,
    get_model_config,
    greedy_sample,
    sample_from_dist,
    softmax,
    top_k_dist,
)
from repro.model.sampling import TokenDistribution, apply_repetition_penalty


class TestTokenizer:
    def test_roundtrip_ascii(self):
        tok = ByteTokenizer()
        text = "Hello, world!"
        assert tok.decode(tok.encode(text)) == text

    def test_roundtrip_unicode(self):
        tok = ByteTokenizer()
        text = "héllo ✓ 世界"
        assert tok.decode(tok.encode(text)) == text

    def test_bos_eos(self):
        tok = ByteTokenizer()
        ids = tok.encode("hi", add_bos=True, add_eos=True)
        assert ids[0] == tok.BOS_TOKEN
        assert ids[-1] == tok.EOS_TOKEN
        assert tok.decode(ids) == "hi"

    def test_specials_render_as_tags(self):
        tok = ByteTokenizer()
        assert tok.decode_token(tok.EOS_TOKEN) == "<eos>"
        assert tok.decode_token(65) == "A"

    def test_vocab_size_and_listing(self):
        tok = ByteTokenizer()
        vocab = tok.get_vocab()
        assert len(vocab) == len(tok) == 259
        assert vocab[65] == b"A"
        assert vocab[256] == b"<bos>"

    def test_out_of_range_rejected(self):
        tok = ByteTokenizer()
        with pytest.raises(ReproError):
            tok.decode([300])

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ReproError):
            ByteTokenizer(vocab_size=10)

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, text):
        tok = ByteTokenizer()
        assert tok.decode(tok.encode(text)) == text


class TestSampling:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.argmax(probs) == 2

    def test_softmax_temperature(self):
        logits = np.array([1.0, 2.0])
        sharp = softmax(logits, temperature=0.1)
        flat = softmax(logits, temperature=10.0)
        assert sharp[1] > flat[1]

    def test_softmax_invalid_temperature(self):
        with pytest.raises(ReproError):
            softmax(np.array([1.0]), temperature=0.0)

    def test_greedy(self):
        assert greedy_sample(np.array([0.1, 5.0, -2.0])) == 1

    def test_top_k_truncation(self):
        logits = np.random.default_rng(0).normal(size=300)
        dist = top_k_dist(logits, k=16)
        assert len(dist) == 16
        assert dist.truncated
        assert sum(dist.probs) == pytest.approx(1.0)
        assert dist.max_index() == int(np.argmax(logits))

    def test_top_k_larger_than_vocab(self):
        logits = np.array([0.0, 1.0, 2.0])
        dist = top_k_dist(logits, k=100)
        assert len(dist) == 3
        assert not dist.truncated

    def test_dist_sorted_descending(self):
        dist = top_k_dist(np.array([3.0, 1.0, 2.0]), k=3)
        assert list(dist.probs) == sorted(dist.probs, reverse=True)
        assert dist.token_ids[0] == 0

    def test_sample_respects_distribution(self):
        dist = TokenDistribution(token_ids=(7, 9), probs=(1.0, 0.0))
        rng = np.random.default_rng(0)
        assert all(sample_from_dist(dist, rng) == 7 for _ in range(20))

    def test_sample_empty_rejected(self):
        dist = TokenDistribution(token_ids=(), probs=())
        with pytest.raises(ReproError):
            sample_from_dist(dist, np.random.default_rng(0))

    def test_top_p_cutoff(self):
        dist = TokenDistribution(token_ids=(1, 2, 3), probs=(0.7, 0.2, 0.1))
        rng = np.random.default_rng(0)
        samples = {sample_from_dist(dist, rng, top_p=0.7) for _ in range(50)}
        assert samples == {1}

    def test_top_p_invalid(self):
        dist = TokenDistribution(token_ids=(1,), probs=(1.0,))
        with pytest.raises(ReproError):
            sample_from_dist(dist, np.random.default_rng(0), top_p=0.0)

    def test_restricted(self):
        dist = TokenDistribution(token_ids=(1, 2, 3), probs=(0.5, 0.3, 0.2))
        restricted = dist.restricted([2, 3])
        assert set(restricted.token_ids) == {2, 3}
        assert sum(restricted.probs) == pytest.approx(1.0)

    def test_restricted_empty(self):
        dist = TokenDistribution(token_ids=(1,), probs=(1.0,))
        assert len(dist.restricted([5])) == 0

    def test_prob_of_and_as_dict(self):
        dist = TokenDistribution(token_ids=(1, 2), probs=(0.6, 0.4))
        assert dist.prob_of(1) == pytest.approx(0.6)
        assert dist.prob_of(99) == 0.0
        assert dist.as_dict() == {1: pytest.approx(0.6), 2: pytest.approx(0.4)}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            TokenDistribution(token_ids=(1, 2), probs=(1.0,))

    def test_repetition_penalty(self):
        logits = np.array([2.0, -1.0, 3.0])
        adjusted = apply_repetition_penalty(logits, [0, 1], penalty=2.0)
        assert adjusted[0] == pytest.approx(1.0)
        assert adjusted[1] == pytest.approx(-2.0)
        assert adjusted[2] == pytest.approx(3.0)

    def test_repetition_penalty_invalid(self):
        with pytest.raises(ReproError):
            apply_repetition_penalty(np.array([1.0]), [0], penalty=0.0)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_top_k_is_normalised_property(self, k, seed):
        logits = np.random.default_rng(seed).normal(size=259)
        dist = top_k_dist(logits, k=k)
        assert sum(dist.probs) == pytest.approx(1.0)
        assert len(dist) == min(k, 259)


class TestConfigsAndRegistry:
    def test_three_sizes_defined(self):
        assert set(MODEL_CONFIGS) == {"llama-sim-1b", "llama-sim-3b", "llama-sim-8b"}

    def test_tpot_calibration_matches_paper(self):
        assert get_model_config("llama-sim-1b").cost.decode_ms_base == pytest.approx(16.83)
        assert get_model_config("llama-sim-3b").cost.decode_ms_base == pytest.approx(30.30)
        assert get_model_config("llama-sim-8b").cost.decode_ms_base == pytest.approx(64.06)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            get_model_config("gpt-5")

    def test_d_head_and_gqa(self):
        config = get_model_config("llama-sim-1b")
        assert config.d_head * config.n_heads == config.d_model
        assert config.n_heads % config.n_kv_heads == 0

    def test_registry_hosts_models(self):
        registry = ModelRegistry.with_default_models()
        assert len(registry) == 3
        entry = registry.get("llama-sim-1b")
        assert entry.supports_trait("Forward")
        assert not entry.supports_trait("InputImage")

    def test_registry_duplicate_rejected(self):
        registry = ModelRegistry(["llama-sim-1b"])
        with pytest.raises(ReproError):
            registry.add("llama-sim-1b")

    def test_registry_unknown_rejected(self):
        registry = ModelRegistry(["llama-sim-1b"])
        with pytest.raises(ReproError):
            registry.get("llama-sim-8b")
        assert "llama-sim-8b" not in registry

    def test_transformer_cached(self):
        registry = ModelRegistry(["llama-sim-1b"])
        entry = registry.get("llama-sim-1b")
        assert entry.transformer is entry.transformer
