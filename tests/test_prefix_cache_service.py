"""Invariant suite for the automatic prefix cache (repro.core.prefix_cache).

Covers the radix index itself, the transparent forward-rewrite path,
refcount pinning (pages survive their producer's exit, are never
double-freed), LRU eviction / demotion to the host tier with PCIe-charged
fault-in, invalidation on page mutation, and the ``prefix_cache=off``
regression (no service constructed, zero cache activity).
"""

import pytest

from repro.core import InferletProgram, PieServer
from repro.core.config import ControlLayerConfig, PieConfig
from repro.errors import ReproError
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.support import Context, SamplingParams

#: 6+ pages of shared prompt under the byte tokenizer (page size 16).
SHARED_PROMPT = (
    "System: you are a careful assistant; follow the fleet style guide and "
    "answer each task precisely and briefly. "
)


def make_server(sim, *, prefix_cache=True, kv_pages=256, host_pages=0, max_pages=0):
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=kv_pages, host_kv_pages=host_pages),
        control=ControlLayerConfig(
            prefix_cache=prefix_cache, prefix_cache_max_pages=max_pages
        ),
    )
    return PieServer(sim, config=config)


def make_agent(name, suffix, max_tokens=3):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(SHARED_PROMPT + suffix)
        answer = await context.generate_until(max_tokens=max_tokens)
        context.free()
        return answer

    return InferletProgram(name=name, main=main)


def run_sequential(server, programs):
    """Launch programs strictly one after another (no overlap)."""
    for program in programs:
        server.register_program(program)

    async def run_all():
        results = []
        for program in programs:
            results.append(await server.run_inferlet(program.name))
        return results

    return server.sim.run_until_complete(run_all())


class TestRadixIndex:
    def _service(self):
        sim = Simulator(seed=0)
        server = make_server(sim)
        return server.service().shards[0].prefix_cache

    def test_match_is_page_aligned_longest_prefix(self):
        cache = self._service()
        size = cache.page_size
        resources = cache.resources
        resources.create_space("producer")
        handles = resources.alloc_kv_pages("producer", 2)
        pids = resources.resolve_kv_many("producer", handles)
        chain = list(range(2 * size))
        for index, pid in enumerate(pids):
            cache._page_tokens[pid] = chain[index * size : (index + 1) * size]
            page = cache.memory.kv_pages.page(pid)
            for slot in range(size):
                page.valid[slot] = True
        cache._commit_chain(pids, chain)
        assert cache.cached_pages() == 2
        assert cache.match_len(chain) == 2 * size
        assert cache.match_len(chain[: size + 3]) == size
        assert cache.match_len([999] + chain[1:]) == 0
        # Probing does not mutate the LRU clock.
        stamps = [n.last_used for n in cache._reclaim_candidates()]
        cache.match_len(chain)
        assert [n.last_used for n in cache._reclaim_candidates()] == stamps

    def test_lru_eviction_order_is_deterministic(self):
        cache = self._service()
        size = cache.page_size
        resources = cache.resources
        resources.create_space("producer")
        for branch in range(3):
            handles = resources.alloc_kv_pages("producer", 1)
            [pid] = resources.resolve_kv_many("producer", handles)
            chain = [100 + branch] * size
            cache._page_tokens[pid] = list(chain)
            page = cache.memory.kv_pages.page(pid)
            for slot in range(size):
                page.valid[slot] = True
            cache._commit_chain([pid], chain)
            # The producer moves on: only the cache's pin remains.
            resources.dealloc_kv_pages("producer", handles)
        assert cache.cached_pages() == 3
        first = cache._reclaim_candidates()[0]
        assert first.tokens[0] == 100  # insertion order decides untouched ties
        assert cache._evict_lru_leaf(demote=False) == 1
        assert cache.cached_pages() == 2
        # The freed branch was the coldest one; 101/102 remain.
        assert cache.match_len([100] * size) == 0
        assert cache.match_len([101] * size) == size


class TestTransparentReuse:
    def test_second_agent_reuses_first_agents_prompt(self):
        sim = Simulator(seed=1)
        server = make_server(sim)
        run_sequential(
            server,
            [make_agent("p1", "task one. "), make_agent("p2", "task two. ")],
        )
        m = server.metrics
        assert m.prefix_cache_hits == 1
        assert m.prefix_cache_saved_tokens >= (len(SHARED_PROMPT) // 16) * 16
        assert m.prefix_cache_inserted_pages > 0

    def test_generation_is_bit_identical_with_cache(self):
        def run(prefix_cache):
            sim = Simulator(seed=2)
            server = make_server(sim, prefix_cache=prefix_cache)
            results = run_sequential(
                server,
                [make_agent("g1", "alpha. "), make_agent("g2", "alpha. ")],
            )
            return [r.result for r in results]

        assert run(False) == run(True)

    def test_cached_pages_survive_producer_exit(self):
        sim = Simulator(seed=3)
        server = make_server(sim)
        service = server.service()
        [first] = run_sequential(server, [make_agent("solo", "task. ")])
        assert first.status == "finished"
        cache = service.shards[0].prefix_cache
        # The producer freed everything it owned, yet the registered pages
        # are still allocated — pinned solely by the cache's references.
        assert cache.cached_pages() > 0
        assert service.memory.kv_pages.num_allocated == cache.cached_pages()
        # ... and a later consumer still hits.
        run_sequential(server, [make_agent("late", "task. ")])
        assert server.metrics.prefix_cache_hits == 1

    def test_drop_all_returns_every_page_exactly_once(self):
        sim = Simulator(seed=4)
        server = make_server(sim)
        service = server.service()
        run_sequential(server, [make_agent("d1", "one. "), make_agent("d2", "two. ")])
        cache = service.shards[0].prefix_cache
        store = service.memory.kv_pages
        assert store.num_allocated == cache.cached_pages() > 0
        cache.drop_all()
        # No leak, no double free: pool conservation holds and is empty.
        assert store.num_allocated == 0
        assert store.num_free == store.capacity

    def test_mutating_a_cached_page_invalidates_its_subtree(self):
        sim = Simulator(seed=5)
        server = make_server(sim)
        service = server.service()

        async def masker(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill(SHARED_PROMPT + "masked tail. ")
            await context.mask_token_range(0, 8)
            context.free()
            return "done"

        run_sequential(server, [InferletProgram(name="masker", main=masker)])
        cache = service.shards[0].prefix_cache
        # Masking page 0 taints it: the chain hanging off it is never
        # registered (or, had it been registered already, is dropped).
        assert cache.cached_pages() == 0

    def test_masking_an_adopted_page_copies_on_write(self):
        """Mutating a cache-shared page must not leak into other holders."""

        def run(prefix_cache):
            sim = Simulator(seed=12)
            server = make_server(sim, prefix_cache=prefix_cache)

            async def masker(ctx):
                context = Context(ctx, sampling=SamplingParams())
                await context.fill(SHARED_PROMPT + "task. ")
                await context.mask_token_range(0, 8)
                answer = await context.generate_until(max_tokens=3)
                context.free()
                return answer

            programs = [
                make_agent("seed-agent", "task. "),
                InferletProgram(name="masker", main=masker),
                make_agent("after", "task. "),
            ]
            results = run_sequential(server, programs)
            return server, [r.result for r in results]

        server_off, outputs_off = run(False)
        server_on, outputs_on = run(True)
        # The masker adopted shared pages, then masked them: it got private
        # copies, so its own output and every later consumer's output match
        # the cache-off run bit for bit.
        assert outputs_on == outputs_off
        m = server_on.metrics
        assert m.prefix_cache_hits == 2  # masker and the follower both hit
        # The cache index survived the mutation intact.
        assert server_on.service().shards[0].prefix_cache.cached_pages() > 0
        kinds = server_on.service().pool.aggregate_stats().batches_by_kind
        assert kinds.get("cache_cow", 0) >= 1

    def test_export_shared_pages_keep_inplace_mutation_semantics(self):
        """COW applies to cache aliasing only, not application exports."""
        sim = Simulator(seed=13)
        server = make_server(sim)

        async def exporter(ctx):
            queue = ctx.create_queue()
            pages = ctx.alloc_kvpage(queue, 1)
            ctx.export_kvpage(pages, "raw-shared")
            await ctx.synchronize(queue)
            return "exported"

        async def masker(ctx):
            queue = ctx.create_queue()
            [page] = ctx.import_kvpage("raw-shared")
            ctx.mask_kvpage(queue, page, [True] * 16)
            await ctx.synchronize(queue)
            return "masked"

        run_sequential(
            server,
            [
                InferletProgram(name="exp", main=exporter),
                InferletProgram(name="msk", main=masker),
            ],
        )
        # The page is shared (export entry + importer) but the cache never
        # aliased it, so the mutation stayed in place: no copy-on-write.
        kinds = server.service().pool.aggregate_stats().batches_by_kind
        assert "cache_cow" not in kinds

    def test_invalidation_drops_a_registered_subtree(self):
        sim = Simulator(seed=11)
        server = make_server(sim)
        service = server.service()
        run_sequential(server, [make_agent("reg", "task. ")])
        cache = service.shards[0].prefix_cache
        assert cache.cached_pages() > 0
        root_pid = next(iter(cache._root.children.values())).pid
        cache.invalidate_pid(root_pid)
        assert cache.cached_pages() == 0
        assert server.metrics.prefix_cache_evictions > 0
        assert service.memory.kv_pages.num_allocated == 0


class TestDemotionLadder:
    def test_reclaim_demotes_then_faults_back_in(self):
        sim = Simulator(seed=6)
        server = make_server(sim, host_pages=32)
        service = server.service()
        cache = service.shards[0].prefix_cache
        run_sequential(server, [make_agent("warm", "task. ")])
        resident = cache.cached_pages()
        assert resident > 0
        # Drain the cache onto the host tier via the reclamation rung.
        freed = 0
        while True:
            got = service.swap.reclaim_by_cache(service.shards[0])
            if not got:
                break
            freed += got
        m = server.metrics
        assert freed == resident
        assert m.prefix_cache_demotions == resident
        assert m.prefix_cache_reclaims == resident
        assert service.host_pool.num_used == resident
        assert cache.cached_pages() == 0
        assert service.memory.kv_pages.num_allocated == 0
        # A new consumer faults the demoted prefix back in over PCIe.
        run_sequential(server, [make_agent("hitter", "task. ")])
        assert m.prefix_cache_hits == 1
        assert m.prefix_cache_faultins > 0
        kinds = service.pool.aggregate_stats().batches_by_kind
        assert kinds.get("cache_demote") == resident
        assert kinds.get("cache_fault_in") == 1  # one batched transfer

    def test_reclaim_without_host_tier_evicts(self):
        sim = Simulator(seed=7)
        server = make_server(sim, host_pages=0)
        service = server.service()
        run_sequential(server, [make_agent("evictme", "task. ")])
        cache = service.shards[0].prefix_cache
        assert cache.cached_pages() > 0
        assert service.swap.reclaim_by_cache(service.shards[0]) == 1
        assert server.metrics.prefix_cache_demotions == 0
        assert server.metrics.prefix_cache_evictions >= 1

    def test_max_pages_bounds_the_index(self):
        sim = Simulator(seed=8)
        server = make_server(sim, max_pages=4)
        service = server.service()
        run_sequential(server, [make_agent("big", "a long unique task suffix. ")])
        assert service.shards[0].prefix_cache.cached_pages() <= 4


class TestDisabledKnob:
    def test_off_means_no_service_and_no_activity(self):
        sim = Simulator(seed=9)
        server = make_server(sim, prefix_cache=False)
        assert server.service().shards[0].prefix_cache is None
        run_sequential(
            server, [make_agent("o1", "task. "), make_agent("o2", "task. ")]
        )
        m = server.metrics
        assert m.prefix_cache_hits == m.prefix_cache_misses == 0
        assert m.prefix_cache_saved_tokens == m.prefix_cache_inserted_pages == 0
        # Every page went home when its owner exited.
        assert server.service().memory.kv_pages.num_allocated == 0

    def test_negative_max_pages_rejected(self):
        with pytest.raises(ReproError):
            PieConfig(control=ControlLayerConfig(prefix_cache_max_pages=-1))

    def test_server_shorthand(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, prefix_cache=True)
        assert server.config.control.prefix_cache
        assert server.service().shards[0].prefix_cache is not None


class TestCacheAffinityPlacement:
    def test_fleet_follows_the_cached_prompt(self):
        sim = Simulator(seed=10)
        config = PieConfig(
            gpu=GpuConfig(num_devices=2),
            control=ControlLayerConfig(
                prefix_cache=True, placement_policy="cache_affinity"
            ),
        )
        server = PieServer(sim, config=config)
        programs = []
        for index in range(4):
            program = make_agent(f"c{index}", f"task {index}. ")
            program.prefix_hint = SHARED_PROMPT
            programs.append(program)
        run_sequential(server, programs)
        m = server.metrics
        # The first agent seeds one shard; every follower lands beside the
        # cached prompt and hits, instead of spreading across devices.
        assert m.prefix_cache_hits == 3
        assert max(m.placements_by_device.values()) == 4

    def test_tied_shards_split_least_loaded(self):
        """Shards holding the same prefix share the fleet, not pack shard 0."""
        from repro.core.router import Router

        sim = Simulator(seed=14)
        config = PieConfig(
            gpu=GpuConfig(num_devices=2),
            control=ControlLayerConfig(
                prefix_cache=True, placement_policy="cache_affinity"
            ),
        )
        server = PieServer(sim, config=config)
        shards = server.service().shards
        size = shards[0].prefix_cache.page_size
        chain = list(range(size))
        # Seed BOTH shard indexes with the same one-page prefix.
        for shard in shards:
            shard.resources.create_space("seeder")
            handles = shard.resources.alloc_kv_pages("seeder", 1)
            [pid] = shard.resources.resolve_kv_many("seeder", handles)
            cache = shard.prefix_cache
            cache._page_tokens[pid] = list(chain)
            page = cache.memory.kv_pages.page(pid)
            for slot in range(size):
                page.valid[slot] = True
            cache._commit_chain([pid], chain)
        router = Router(shards, policy="cache_affinity")
        first = router.place("tie-a", prefix_tokens=chain).index
        second = router.place("tie-b", prefix_tokens=chain).index
        assert {first, second} == {0, 1}
