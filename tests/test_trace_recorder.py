"""Unit tests for the flight recorder itself (repro.core.trace).

The serving-path integration (bit-identity, off-knob inertness) lives in
tests/test_determinism.py; here the recorder's own guarantees are pinned:
bounded ring eviction that never orphans a begin/close pair, idempotent
span closing, sampler re-arm gating, and exporter round-trips.
"""

import json

from repro.core.trace import TraceRecorder
from repro.sim import Simulator


def make_recorder(max_events=10, sample_seconds=0.0):
    sim = Simulator(seed=1)
    return sim, TraceRecorder(sim, max_events=max_events, sample_seconds=sample_seconds)


# -- spans & ring buffer ------------------------------------------------------


def test_begin_end_records_duration_on_virtual_clock():
    sim, trace = make_recorder()
    span = trace.begin("queue:forward", "queue", shard=0, inferlet="i-1")
    sim.run_until_complete(sim.sleep(0.25))
    trace.end(span, args={"tokens": 4})
    (event,) = trace.events()
    assert event["name"] == "queue:forward"
    assert event["ts"] == 0.0
    assert event["dur"] == 0.25
    assert event["args"] == {"tokens": 4}
    assert trace.open_spans() == []


def test_end_is_idempotent_and_tolerates_none():
    _, trace = make_recorder()
    span = trace.begin("s", "sched")
    trace.end(span)
    trace.end(span)  # second close: no-op
    trace.end(None)  # cleared span handle: no-op
    trace.end(10**9)  # unknown id: no-op
    assert len(trace.events()) == 1


def test_ring_eviction_keeps_open_spans_out_of_the_ring():
    """Open spans must survive arbitrarily many completed-event evictions:
    a span is either still open, fully present, or fully evicted — never a
    dangling close without its begin."""
    _, trace = make_recorder(max_events=5)
    held = trace.begin("lifecycle", "lifecycle", inferlet="survivor")
    for index in range(50):
        trace.instant(f"tick{index}", "sched")
    assert len(trace.events()) == 5  # ring is full...
    assert trace.dropped == 45
    assert [span["inferlet"] for span in trace.open_spans()] == ["survivor"]
    trace.end(held)  # ...and the old span still closes into the ring
    closed = trace.events()[-1]
    assert closed["inferlet"] == "survivor"
    assert "dur" in closed
    assert trace.open_spans() == []


def test_total_emitted_counts_evicted_events():
    _, trace = make_recorder(max_events=3)
    for _ in range(7):
        trace.instant("x", "sched")
    assert trace.total_emitted == 7
    assert len(trace.events()) == 3
    assert trace.dropped == 4


def test_events_filter_by_category():
    _, trace = make_recorder()
    trace.instant("a", "swap")
    trace.instant("b", "sched")
    trace.counter("telemetry", {"queue_depth": 2}, shard=0)
    assert [e["name"] for e in trace.events("swap")] == ["a"]
    assert [e["name"] for e in trace.events("counter")] == ["telemetry"]


# -- sampler ------------------------------------------------------------------


def test_sampler_rearms_while_active_then_stops():
    sim, trace = make_recorder(sample_seconds=0.1)
    active = {"value": True}
    trace.install_sampler(
        lambda recorder: recorder.counter("telemetry", {"tick": 1}),
        lambda: active["value"],
    )
    trace.poke_sampler()
    trace.poke_sampler()  # double poke must not double-arm
    sim.run_until_complete(sim.sleep(0.35))
    assert trace.samples_taken == 3
    active["value"] = False
    sim.run_until_complete(sim.sleep(0.5))
    # One final tick fires from the already-armed timer, then the chain stops.
    assert trace.samples_taken == 4


def test_sampler_disabled_without_period_or_fn():
    sim, trace = make_recorder(sample_seconds=0.0)
    trace.install_sampler(lambda r: r.counter("t", {}), lambda: True)
    trace.poke_sampler()  # period 0: stays disarmed
    sim.run_until_complete(sim.sleep(1.0))
    assert trace.samples_taken == 0
    _, bare = make_recorder(sample_seconds=0.1)
    bare.poke_sampler()  # no sample_fn installed: no-op
    assert not bare._sampler_armed


# -- exporters ----------------------------------------------------------------


def test_jsonl_export_includes_open_spans_flagged(tmp_path):
    sim, trace = make_recorder()
    trace.begin("lifecycle", "lifecycle", inferlet="aborted-1")
    trace.instant("swap_out", "swap", shard=0, inferlet="i-2", args={"pages": 3})
    path = tmp_path / "t.jsonl"
    count = trace.export(str(path))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert count == len(lines) == 2
    open_events = [e for e in lines if (e.get("args") or {}).get("open")]
    assert [e["inferlet"] for e in open_events] == ["aborted-1"]
    # Exporting is read-only: the span is still open afterwards.
    assert len(trace.open_spans()) == 1


def test_perfetto_export_structure(tmp_path):
    sim, trace = make_recorder()
    span = trace.begin("queue:forward", "queue", shard=1, inferlet="i-1")
    sim.run_until_complete(sim.sleep(0.002))
    trace.end(span)
    trace.counter("telemetry", {"queue_depth": 2.0}, shard=1)
    trace.instant("place", "sched", shard=0, inferlet="i-1")
    path = tmp_path / "t.json"
    trace.export(str(path))
    document = json.loads(path.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    names = {m["args"]["name"] for m in metadata if m["name"] == "process_name"}
    assert "shard1" in names and "shard0" in names
    (span_event,) = spans
    assert span_event["pid"] == 2  # shard 1 -> pid 2
    assert span_event["dur"] == 0.002 * 1e6  # microseconds
    counters = [e for e in events if e["ph"] == "C"]
    assert counters[0]["args"] == {"queue_depth": 2.0}
