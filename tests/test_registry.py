"""The labeled metric registry and its log-bucketed histograms."""

import math

import pytest

from repro.core.metrics import percentile
from repro.core.registry import (
    DEFAULT_GROWTH,
    LogHistogram,
    MetricRegistry,
    latency_histogram,
    size_histogram,
)
from repro.errors import ReproError


def seeded_samples(n=500, seed=3):
    """Deterministic latency-like samples spanning several decades."""
    samples = []
    state = seed
    for _ in range(n):
        state = (state * 48271) % 2147483647
        # 0.2 ms .. ~20 s, log-uniform-ish
        samples.append(2e-4 * (10 ** (5.0 * (state / 2147483647))))
    return samples


class TestLogHistogram:
    def test_observation_is_deterministic(self):
        a = latency_histogram()
        b = latency_histogram()
        for value in seeded_samples():
            a.observe(value)
            b.observe(value)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_percentile_within_one_bucket_of_exact(self):
        samples = seeded_samples()
        hist = latency_histogram()
        for value in samples:
            hist.observe(value)
        for p in (50, 90, 99):
            exact = percentile(samples, p)
            approx = hist.percentile(p)
            # The histogram returns the bucket's upper bound, so the answer
            # is never below the exact sample and at most one bucket above.
            assert exact <= approx <= exact * DEFAULT_GROWTH * (1 + 1e-9), p

    def test_mean_is_exact(self):
        samples = seeded_samples(100)
        hist = latency_histogram()
        for value in samples:
            hist.observe(value)
        assert math.isclose(hist.mean, sum(samples) / len(samples))

    def test_underflow_and_overflow(self):
        hist = LogHistogram(lo=1.0, hi=100.0)
        hist.observe(0.5)
        hist.observe(1e6)
        assert hist.total == 2
        assert hist.percentile(0) == 1.0  # underflow reports lo
        assert hist.percentile(99) == 100.0  # overflow clamps to hi

    def test_empty_percentile_is_zero(self):
        assert latency_histogram().percentile(99) == 0.0

    def test_merge_matches_combined_observation(self):
        samples = seeded_samples(300)
        combined = latency_histogram()
        for value in samples:
            combined.observe(value)
        a = latency_histogram()
        b = latency_histogram()
        for i, value in enumerate(samples):
            (a if i % 2 else b).observe(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.total == combined.total
        # Addition order differs, so the sums agree only to float rounding.
        assert math.isclose(a.sum, combined.sum)

    def test_merge_is_associative(self):
        samples = seeded_samples(300)
        parts = [latency_histogram() for _ in range(3)]
        for i, value in enumerate(samples):
            parts[i % 3].observe(value)
        a, b, c = parts

        left = a.copy().merge(b).merge(c)  # (a + b) + c
        right = b.copy().merge(c)  # a + (b + c)
        right = a.copy().merge(right)
        assert left.counts == right.counts
        assert left.total == right.total
        assert math.isclose(left.sum, right.sum)

    def test_merge_layout_mismatch_raises(self):
        with pytest.raises(ReproError):
            latency_histogram().merge(size_histogram())


class TestFamilies:
    def test_counter_and_gauge(self):
        registry = MetricRegistry()
        requests = registry.counter("reqs_total", "requests", labelnames=("tenant",))
        requests.labels(tenant="a").inc()
        requests.labels(tenant="a").inc(2)
        requests.labels(tenant="b").inc()
        depth = registry.gauge("queue_depth", "depth")
        depth.labels().set(7)
        snapshot = registry.scalar_snapshot()
        assert snapshot['reqs_total{tenant="a"}'] == 3
        assert snapshot['reqs_total{tenant="b"}'] == 1
        assert snapshot["queue_depth"] == 7

    def test_get_or_create_returns_same_family(self):
        registry = MetricRegistry()
        first = registry.counter("c_total", "help", labelnames=("x",))
        second = registry.counter("c_total", "help", labelnames=("x",))
        assert first is second

    def test_schema_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("c_total", "help", labelnames=("x",))
        with pytest.raises(ReproError):
            registry.gauge("c_total", "help", labelnames=("x",))
        with pytest.raises(ReproError):
            registry.counter("c_total", "help", labelnames=("y",))

    def test_wrong_label_names_raise(self):
        registry = MetricRegistry()
        family = registry.counter("c_total", "help", labelnames=("tenant",))
        with pytest.raises(ReproError):
            family.labels(nope="x")
        with pytest.raises(ReproError):
            family.labels()


class TestRegistryMerge:
    def build(self, tenants):
        registry = MetricRegistry()
        for tenant, count in tenants.items():
            registry.counter(
                "reqs_total", "requests", labelnames=("tenant",)
            ).labels(tenant=tenant).inc(count)
            hist = registry.histogram(
                "lat_seconds", "latency", labelnames=("tenant",)
            ).labels(tenant=tenant)
            for i in range(count):
                hist.observe(0.01 * (i + 1))
            registry.gauge(
                "depth", "queue depth", labelnames=("tenant",)
            ).labels(tenant=tenant).set(count)
        return registry

    def test_cross_shard_merge_adds_counters_and_histograms(self):
        a = self.build({"x": 3, "y": 2})
        b = self.build({"y": 4, "z": 1})
        a.merge(b)
        snapshot = a.scalar_snapshot()
        assert snapshot['reqs_total{tenant="x"}'] == 3
        assert snapshot['reqs_total{tenant="y"}'] == 6
        assert snapshot['reqs_total{tenant="z"}'] == 1
        hist = a.get("lat_seconds").labels(tenant="y")
        assert hist.total == 6
        # Gauges are last-writer-wins (the merged-in shard's reading).
        assert snapshot['depth{tenant="y"}'] == 4

    def test_merge_is_associative_across_registries(self):
        shards = [self.build({"x": n + 1, "y": 2 * n + 1}) for n in range(3)]

        left = self.build({})
        for shard in (self.build({"x": 1, "y": 1}), *shards):
            left.merge(shard)

        right_tail = self.build({})
        for shard in shards:
            right_tail.merge(shard)
        right = self.build({"x": 1, "y": 1})
        right.merge(right_tail)

        assert left.scalar_snapshot() == right.scalar_snapshot()
        assert left.to_dict() == right.to_dict()


class TestExports:
    def build(self):
        registry = MetricRegistry()
        registry.counter("reqs_total", "requests", labelnames=("tenant",)).labels(
            tenant="acme"
        ).inc(5)
        registry.gauge("depth", "queue depth").labels().set(2.5)
        hist = registry.histogram(
            "lat_seconds", "latency", labelnames=("tenant",)
        ).labels(tenant="acme")
        for value in (0.001, 0.01, 0.01, 0.1, 2.0):
            hist.observe(value)
        return registry

    def test_prometheus_exposition_shape(self):
        text = self.build().to_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert '# HELP lat_seconds latency' in text
        assert 'reqs_total{tenant="acme"} 5' in text
        assert "depth 2.5" in text
        assert 'lat_seconds_bucket{tenant="acme",le="+Inf"} 5' in text
        assert 'lat_seconds_count{tenant="acme"} 5' in text

    def test_prometheus_round_trips_through_slo_report(self):
        registry = self.build()
        from repro.tools.slo_report import parse_prometheus

        parsed = parse_prometheus(registry.to_prometheus())
        document = registry.to_dict()
        assert set(parsed) == set(document)
        for name, family in document.items():
            assert parsed[name]["type"] == family["type"]
            assert parsed[name]["help"] == family["help"]
            for sample, round_tripped in zip(
                family["samples"], parsed[name]["samples"]
            ):
                assert round_tripped["labels"] == sample["labels"]
                if family["type"] == "histogram":
                    assert round_tripped["count"] == sample["count"]
                    assert round_tripped["sum"] == sample["sum"]
                    # Cumulative bucket counts survive (le keys are
                    # formatted differently, and the exposition always
                    # carries the mandatory +Inf row).
                    expected = list(sample["buckets"].values())
                    if "+Inf" not in sample["buckets"]:
                        expected.append(sample["count"])
                    assert list(round_tripped["buckets"].values()) == expected
                else:
                    assert round_tripped["value"] == sample["value"]

    def test_to_dict_histogram_buckets_are_cumulative(self):
        document = self.build().to_dict()
        buckets = document["lat_seconds"]["samples"][0]["buckets"]
        counts = list(buckets.values())
        assert counts == sorted(counts)
        assert counts[-1] == 5
