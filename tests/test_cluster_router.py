"""Tests for the cluster layer: router placement policies, per-device
schedulers, cross-device KV import, and the num_devices=1 regression."""

import pytest

from repro.core import InferletProgram, PieServer, PLACEMENT_POLICIES
from repro.core.config import ControlLayerConfig, PieConfig
from repro.core.router import Router, aggregate_scheduler_stats
from repro.errors import ReproError
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.support import Context, SamplingParams


def make_completion_program(name, prompt, max_tokens=8):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(prompt)
        text = await context.generate_until(max_tokens=max_tokens)
        context.free()
        return text

    return InferletProgram(name=name, main=main)


def run_fleet(server, programs):
    sim = server.sim
    for program in programs:
        server.register_program(program)

    async def run_all():
        tasks = [sim.create_task(server.run_inferlet(p.name)) for p in programs]
        return await sim.gather(tasks)

    return sim.run_until_complete(run_all())


class TestConfig:
    def test_num_devices_must_be_positive(self):
        with pytest.raises(ReproError):
            GpuConfig(num_devices=0)

    def test_placement_policy_validated(self):
        with pytest.raises(ReproError):
            PieConfig(control=ControlLayerConfig(placement_policy="random"))

    def test_policy_sets_agree(self):
        # The literal set validated in config must match the router's.
        # "disaggregated" is only valid alongside its knobs (it implies a
        # role split, which needs the transfer scheduler and >= 2 devices).
        for policy in PLACEMENT_POLICIES:
            if policy == "disaggregated":
                PieConfig(
                    control=ControlLayerConfig(
                        placement_policy=policy, disaggregation=True
                    ),
                    gpu=GpuConfig(num_devices=2),
                )
            else:
                PieConfig(control=ControlLayerConfig(placement_policy=policy))

    def test_server_shorthand_overrides(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=3, placement_policy="least_loaded")
        assert server.num_devices == 3
        assert server.config.control.placement_policy == "least_loaded"
        assert len(server.service().shards) == 3


class TestPlacementPolicies:
    def test_round_robin_cycles_devices(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=3, placement_policy="round_robin")
        programs = [make_completion_program(f"p{i}", f"prompt {i} ") for i in range(6)]
        results = run_fleet(server, programs)
        assert all(r.status == "finished" for r in results)
        placements = server.metrics.placements_by_device
        assert sorted(placements.values()) == [2, 2, 2]

    def test_least_loaded_fills_gaps(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=3)
        router = Router(server.service().shards, policy="least_loaded")
        assert [router.place(i).index for i in ("a", "b", "c")] == [0, 1, 2]
        router.release("b")
        assert router.place("d").index == 1  # the freed shard is emptiest
        assert router.place("e").index == 0  # ties broken by index

    def test_cache_affinity_follows_export(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=2, placement_policy="cache_affinity")

        async def exporter(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("shared prefix text ")
            context.export_prefix("affinity-prefix")
            return "ok"

        async def importer(ctx):
            queue = ctx.create_queue()
            tokens = ctx.tokenize(queue, "shared prefix text ")
            context = await Context.from_export(ctx, "affinity-prefix", tokens)
            await context.fill("suffix")
            text = await context.generate_until(max_tokens=4)
            context.free()
            return text

        server.register_program(InferletProgram(name="exporter", main=exporter))
        server.register_program(
            InferletProgram(
                name="importer", main=importer, placement_hint="affinity-prefix"
            )
        )
        sim.run_until_complete(server.run_inferlet("exporter"))
        result = sim.run_until_complete(server.run_inferlet("importer"))
        assert result.status == "finished"
        # The hint co-located the importer with the pages: no migration.
        assert server.metrics.cross_device_imports == 0

    def test_cache_affinity_without_matching_export_falls_back(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=3)
        router = Router(server.service().shards, policy="cache_affinity")
        # No export anywhere: hinted placement degrades to least_loaded,
        # spreading across shards instead of pinning to shard 0.
        indices = [router.place(f"i{n}", hint="ghost-prefix").index for n in range(3)]
        assert indices == [0, 1, 2]

    def test_unknown_policy_rejected_by_router(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=2)
        with pytest.raises(ReproError):
            Router(server.service().shards, policy="hash")


class TestDisaggregatedRouter:
    """Router mechanics specific to the prefill/decode role split: role
    predicates, migration, and the hint bookkeeping of instances that no
    longer live on the shard their prompt-affinity hint points at."""

    def _router(self, devices=3, prefill_shards=1):
        sim = Simulator(seed=0)
        server = PieServer(
            sim, num_devices=devices, disaggregation=True, prefill_shards=prefill_shards
        )
        return Router(
            server.service().shards,
            policy="disaggregated",
            prefill_shards=prefill_shards,
        )

    def test_roles_and_decode_destination(self):
        router = self._router(devices=3, prefill_shards=1)
        assert router.is_prefill_index(0)
        assert not router.is_prefill_index(1)
        assert router.decode_indices() == [1, 2]
        assert router.place("a").index == 0  # new arrivals land on prefill
        assert router.on_prefill_shard("a")
        dst = router.choose_decode_shard()
        assert dst.index in (1, 2)
        # In-flight streams the placement map can't see shift the choice.
        loaded = router.choose_decode_shard(extra_occupancy={dst.index: 5.0})
        assert loaded.index != dst.index

    def test_migrate_repoints_and_validates(self):
        router = self._router()
        router.place("a")
        router.migrate("a", 2)
        assert router.shard_for("a").index == 2
        assert not router.on_prefill_shard("a")
        with pytest.raises(ReproError):
            router.migrate("ghost", 1)
        with pytest.raises(ReproError):
            router.migrate("a", 99)

    def test_release_retires_hint_of_migrated_instance(self):
        """Regression: the prompt-affinity hint is keyed by the instance
        that created it.  An instance that *migrated* to a decode shard
        still owns its hint entry, so releasing it after migration must
        retire the hint — otherwise every re-launch with the same prompt
        keeps scoring against a prefill shard chosen in a load situation
        long gone."""
        router = self._router(devices=4, prefill_shards=2)
        tokens = (1, 2, 3, 4)
        first = router.place("a", prefix_tokens=tokens).index
        assert router.is_prefill_index(first)
        assert router._hint_shard[tokens] == first
        router.migrate("a", router.decode_indices()[0])
        router.release("a")
        assert "a" not in router._instance_hints
        assert tokens not in router._hint_shard, "stale hint survived release"

    def test_hint_survives_while_another_holder_lives(self):
        router = self._router(devices=4, prefill_shards=2)
        tokens = (9, 8, 7)
        first = router.place("a", prefix_tokens=tokens).index
        # The second holder follows the remembered hint shard.
        assert router.place("b", prefix_tokens=tokens).index == first
        router.migrate("a", router.decode_indices()[0])
        router.release("a")
        # "b" still holds the hint: it must survive "a"'s release ...
        assert router._hint_shard[tokens] == first
        assert router.place("c", prefix_tokens=tokens).index == first
        router.release("b")
        router.release("c")
        # ... and retire with its last holder.
        assert tokens not in router._hint_shard


class TestCrossDeviceImport:
    def _run(self, num_devices):
        sim = Simulator(seed=3)
        server = PieServer(sim, num_devices=num_devices, placement_policy="round_robin")

        async def exporter(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("the quick brown fox ")
            context.export_prefix("xfer-prefix")
            return "exported"

        async def importer(ctx):
            queue = ctx.create_queue()
            tokens = ctx.tokenize(queue, "the quick brown fox ")
            context = await Context.from_export(ctx, "xfer-prefix", tokens)
            await context.fill("jumps")
            text = await context.generate_until(max_tokens=6)
            context.free()
            return text

        server.register_program(InferletProgram(name="exporter", main=exporter))
        server.register_program(InferletProgram(name="importer", main=importer))
        sim.run_until_complete(server.run_inferlet("exporter"))
        result = sim.run_until_complete(server.run_inferlet("importer"))
        return server, result

    def test_import_migrates_pages_between_devices(self):
        server, result = self._run(num_devices=2)
        assert result.status == "finished"
        # Round robin put exporter on device 0 and importer on device 1, so
        # the import paid one device-to-device page migration.
        assert server.metrics.cross_device_imports == 1

    def test_migrated_pages_decode_identically(self):
        _, single = self._run(num_devices=1)
        _, clustered = self._run(num_devices=2)
        # The KV contents survived the copy: greedy decoding from the
        # migrated prefix yields the exact same text as the local import.
        assert clustered.result == single.result

    def test_migration_is_not_free(self):
        # The transfer occupies the destination device, so the clustered
        # run is strictly slower than the same-shard import and the device
        # records the kv_transfer batch.
        server_1, single = self._run(num_devices=1)
        server_2, clustered = self._run(num_devices=2)
        assert clustered.latency > single.latency
        pool_kinds = server_2.service().pool.aggregate_stats().batches_by_kind
        assert pool_kinds.get("kv_transfer") == 1
        single_kinds = server_1.service().pool.aggregate_stats().batches_by_kind
        assert "kv_transfer" not in single_kinds


class TestCacheAffinityCrossDeviceImport:
    """cache_affinity placement with a stale/missing hint: the importer
    lands on another shard and the import must migrate pages — charged
    to the destination device and bit-identical after the copy."""

    def _run(self, importer_hint):
        sim = Simulator(seed=11)
        server = PieServer(sim, num_devices=2, placement_policy="cache_affinity")

        async def exporter(ctx):
            context = Context(ctx, sampling=SamplingParams())
            await context.fill("the quick brown fox ")
            context.export_prefix("real-prefix")
            # Stay alive so least_loaded sends the importer elsewhere.
            await ctx.sleep(0.5)
            return "exported"

        async def importer(ctx):
            queue = ctx.create_queue()
            tokens = ctx.tokenize(queue, "the quick brown fox ")
            context = await Context.from_export(ctx, "real-prefix", tokens)
            await context.fill("jumps")
            text = await context.generate_until(max_tokens=6)
            context.free()
            return text

        server.register_program(InferletProgram(name="exporter", main=exporter))
        server.register_program(
            InferletProgram(name="importer", main=importer, placement_hint=importer_hint)
        )

        async def scenario():
            exp_task = sim.create_task(server.run_inferlet("exporter"))
            await sim.sleep(0.1)  # the export exists, the exporter still runs
            imp_result = await server.run_inferlet("importer")
            exp_result = await exp_task
            return exp_result, imp_result

        exp_result, imp_result = sim.run_until_complete(scenario())
        assert exp_result.status == imp_result.status == "finished"
        return server, imp_result

    def test_stale_hint_migrates_and_charges_the_transfer(self):
        server, result = self._run(importer_hint="ghost-prefix")
        # The hint matched nothing, least_loaded placed the importer on the
        # free device, and the import paid a cross-device page migration.
        assert server.metrics.cross_device_imports == 1
        kinds = server.service().pool.aggregate_stats().batches_by_kind
        assert kinds.get("kv_transfer") == 1
        # The transfer landed on the importer's device and cost real time.
        dst_shard = server.service().shards[1]
        assert dst_shard.device.stats.batches_by_kind.get("kv_transfer") == 1
        assert dst_shard.device.stats.busy_seconds > 0.0

    def test_pages_arrive_intact_across_devices(self):
        # A matching hint co-locates (local aliasing import); a stale hint
        # migrates.  Greedy continuation from the prefix must be identical,
        # proving the migrated KV contents survived the copy.
        server_local, local = self._run(importer_hint="real-prefix")
        server_remote, remote = self._run(importer_hint="ghost-prefix")
        assert server_local.metrics.cross_device_imports == 0
        assert server_remote.metrics.cross_device_imports == 1
        assert local.result == remote.result


class TestPerDeviceMemory:
    def test_pools_are_per_device(self):
        # Two inferlets each grab the ENTIRE per-device KV pool; on a
        # 2-device cluster both fit (one pool each), so neither is
        # FCFS-terminated.
        config = PieConfig(gpu=GpuConfig(num_kv_pages=8, num_devices=2))
        sim = Simulator(seed=0)
        server = PieServer(sim, config=config)

        async def hog(ctx):
            queue = ctx.create_queue()
            pages = ctx.alloc_kvpage(queue, 8)
            await ctx.sleep(0.05)
            await ctx.dealloc_kvpage(queue, pages)
            await ctx.synchronize(queue)
            return len(pages)

        programs = [
            InferletProgram(name="hog0", main=hog),
            InferletProgram(name="hog1", main=hog),
        ]
        results = run_fleet(server, programs)
        assert [r.status for r in results] == ["finished", "finished"]
        assert server.metrics.inferlets_terminated == 0

    def test_single_device_contention_still_reclaims(self):
        # Same workload on ONE device: the second hog cannot fit and the
        # FCFS policy terminates the youngest inferlet, as before.
        config = PieConfig(gpu=GpuConfig(num_kv_pages=8, num_devices=1))
        sim = Simulator(seed=0)
        server = PieServer(sim, config=config)

        async def hog(ctx):
            queue = ctx.create_queue()
            pages = ctx.alloc_kvpage(queue, 8)
            await ctx.sleep(0.05)
            await ctx.dealloc_kvpage(queue, pages)
            await ctx.synchronize(queue)
            return len(pages)

        programs = [
            InferletProgram(name="hog0", main=hog),
            InferletProgram(name="hog1", main=hog),
        ]
        results = run_fleet(server, programs)
        assert server.metrics.inferlets_terminated == 1
        assert sorted(r.status for r in results) == ["finished", "terminated"]


class TestClusterStats:
    def test_aggregation_matches_per_device_sums(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=4)
        programs = [make_completion_program(f"p{i}", f"prompt {i} ") for i in range(8)]
        results = run_fleet(server, programs)
        sim.run()  # drain batches still executing on the devices
        assert all(r.status == "finished" for r in results)
        stats = server.cluster_stats()
        assert len(stats.per_device) == 4
        assert stats.combined.batches_dispatched == sum(
            s.batches_dispatched for s in stats.per_device.values()
        )
        assert stats.combined.commands_dispatched == sum(
            s.commands_dispatched for s in stats.per_device.values()
        )
        assert stats.combined.batch_sizes.total == stats.combined.batches_dispatched
        # Every device actually served work under round robin.
        assert all(s.batches_dispatched > 0 for s in stats.per_device.values())
        # The device pool saw exactly the dispatched batches.
        pool = server.service().pool
        assert pool.aggregate_stats().batches_executed == stats.combined.batches_dispatched

    def test_aggregate_of_nothing_is_empty(self):
        total = aggregate_scheduler_stats([])
        assert total.batches_dispatched == 0
        assert total.mean_batch_size == 0.0


class TestSingleDeviceRegression:
    """num_devices=1 must be behavior-identical to the pre-cluster path."""

    def _run_workload(self, server):
        programs = [make_completion_program(f"p{i}", f"regression {i} ") for i in range(4)]
        results = run_fleet(server, programs)
        return results

    def test_default_config_equals_explicit_one_device(self):
        sim_a = Simulator(seed=7)
        server_a = PieServer(sim_a)  # default: num_devices=1
        results_a = self._run_workload(server_a)

        sim_b = Simulator(seed=7)
        server_b = PieServer(sim_b, num_devices=1, placement_policy="least_loaded")
        results_b = self._run_workload(server_b)

        assert [r.result for r in results_a] == [r.result for r in results_b]
        assert [r.latency for r in results_a] == [r.latency for r in results_b]
        stats_a = server_a.service().scheduler.stats
        stats_b = server_b.service().scheduler.stats
        assert stats_a.batches_dispatched == stats_b.batches_dispatched
        assert stats_a.batch_sizes == stats_b.batch_sizes
        assert sim_a.now == sim_b.now

    def test_single_device_keeps_legacy_accessors_and_name(self):
        sim = Simulator(seed=0)
        server = PieServer(sim)
        service = server.service()
        # Shard-0 accessors alias the only shard.
        assert service.memory is service.shards[0].memory
        assert service.scheduler is service.shards[0].scheduler
        assert service.resources is service.shards[0].resources
        assert service.device.name == "gpu:llama-sim-1b"
        assert service.num_devices == 1

    def test_cluster_devices_are_numbered(self):
        sim = Simulator(seed=0)
        server = PieServer(sim, num_devices=2)
        names = [shard.device.name for shard in server.service().shards]
        assert names == ["gpu:llama-sim-1b:0", "gpu:llama-sim-1b:1"]
