"""Tests for the simulated GPU: memory pools, cost model, serial device."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfResourcesError, ResourceError, SimulationError
from repro.gpu import (
    DeviceMemory,
    ForwardRow,
    GpuConfig,
    KernelCostModel,
    KvPageStore,
    SimDevice,
)
from repro.model import get_model_config
from repro.sim import Simulator


@pytest.fixture()
def config():
    return get_model_config("llama-sim-1b")


@pytest.fixture()
def memory(config):
    return DeviceMemory(config, GpuConfig(num_kv_pages=8, num_embed_slots=16))


class TestGpuConfig:
    def test_defaults_valid(self):
        cfg = GpuConfig()
        assert cfg.num_kv_pages > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_kv_pages": 0},
            {"num_embed_slots": 0},
            {"max_batch_rows": 0},
            {"max_batch_tokens": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(Exception):
            GpuConfig(**kwargs)


class TestKvPageStore:
    def test_allocate_and_free(self, memory):
        ids = memory.kv_pages.allocate(3)
        assert len(ids) == 3
        assert memory.kv_pages.num_allocated == 3
        memory.kv_pages.free(ids)
        assert memory.kv_pages.num_allocated == 0
        assert memory.kv_pages.num_free == 8

    def test_exhaustion(self, memory):
        memory.kv_pages.allocate(8)
        with pytest.raises(OutOfResourcesError):
            memory.kv_pages.allocate(1)

    def test_double_free_rejected(self, memory):
        ids = memory.kv_pages.allocate(1)
        memory.kv_pages.free(ids)
        with pytest.raises(ResourceError):
            memory.kv_pages.free(ids)

    def test_unallocated_page_access_rejected(self, memory):
        with pytest.raises(ResourceError):
            memory.kv_pages.page(0)

    def test_page_reuse_is_cleared(self, memory, config):
        ids = memory.kv_pages.allocate(1)
        page = memory.kv_pages.page(ids[0])
        k = [np.ones((config.n_kv_heads, config.d_head), np.float32)] * config.n_layers
        page.write_token(0, position=5, keys_per_layer=k, values_per_layer=k)
        assert page.num_valid == 1
        memory.kv_pages.free(ids)
        ids2 = memory.kv_pages.allocate(1)
        page2 = memory.kv_pages.page(ids2[0])
        assert page2.num_valid == 0

    def test_write_and_copy_token(self, memory, config):
        ids = memory.kv_pages.allocate(2)
        src = memory.kv_pages.page(ids[0])
        dst = memory.kv_pages.page(ids[1])
        k = [np.full((config.n_kv_heads, config.d_head), 2.0, np.float32)] * config.n_layers
        v = [np.full((config.n_kv_heads, config.d_head), 3.0, np.float32)] * config.n_layers
        src.write_token(1, position=7, keys_per_layer=k, values_per_layer=v)
        dst.copy_token_from(src, src_slot=1, dst_slot=0)
        assert dst.valid[0]
        assert dst.positions[0] == 7
        np.testing.assert_array_equal(dst.keys[0][0], k[0])

    def test_copy_unwritten_slot_rejected(self, memory):
        ids = memory.kv_pages.allocate(2)
        src = memory.kv_pages.page(ids[0])
        dst = memory.kv_pages.page(ids[1])
        with pytest.raises(ResourceError):
            dst.copy_token_from(src, 0, 0)

    def test_mask_tokens(self, memory, config):
        ids = memory.kv_pages.allocate(1)
        page = memory.kv_pages.page(ids[0])
        mask = [False] * config.kv_page_size
        mask[3] = True
        page.mask_tokens(mask)
        assert page.visible[3]
        assert not page.visible[0]

    def test_mask_wrong_length_rejected(self, memory):
        ids = memory.kv_pages.allocate(1)
        with pytest.raises(ResourceError):
            memory.kv_pages.page(ids[0]).mask_tokens([True, False])

    def test_write_bad_slot_rejected(self, memory, config):
        ids = memory.kv_pages.allocate(1)
        page = memory.kv_pages.page(ids[0])
        k = [np.zeros((config.n_kv_heads, config.d_head), np.float32)] * config.n_layers
        with pytest.raises(ResourceError):
            page.write_token(config.kv_page_size, 0, k, k)

    @given(st.lists(st.integers(min_value=1, max_value=3), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_allocation_accounting_property(self, sizes):
        store = KvPageStore(get_model_config("llama-sim-1b"), num_pages=32)
        allocated = []
        for size in sizes:
            allocated.append(store.allocate(size))
        assert store.num_allocated == sum(len(a) for a in allocated)
        for ids in allocated:
            store.free(ids)
        assert store.num_allocated == 0
        assert store.num_free == 32


class TestPoolFreeHardening:
    """_Pool.free must reject bad batches atomically (swap churn makes a
    silently corrupted free list a live failure mode)."""

    def test_double_free_raises(self, memory):
        ids = memory.kv_pages.allocate(2)
        memory.kv_pages.free(ids)
        with pytest.raises(ResourceError, match="double free or unknown"):
            memory.kv_pages.free([ids[0]])

    def test_unknown_id_raises(self, memory):
        with pytest.raises(ResourceError, match="double free or unknown"):
            memory.kv_pages.free([12345])

    def test_duplicate_within_batch_raises(self, memory):
        [pid] = memory.kv_pages.allocate(1)
        with pytest.raises(ResourceError, match="double free or unknown"):
            memory.kv_pages.free([pid, pid])

    def test_failed_free_leaves_pool_untouched(self, memory):
        ids = memory.kv_pages.allocate(3)
        free_before = memory.kv_pages.num_free
        # A batch that is partially valid must not be partially applied:
        # the valid prefix stays allocated when the bad tail raises.
        with pytest.raises(ResourceError):
            memory.kv_pages.free([ids[0], ids[1], 99999])
        assert memory.kv_pages.num_free == free_before
        assert memory.kv_pages.num_allocated == 3
        # The ids are still allocated and can be freed cleanly afterwards.
        memory.kv_pages.free(ids)
        assert memory.kv_pages.num_allocated == 0


class TestEmbedStore:
    def test_write_read_roundtrip(self, memory, config):
        ids = memory.embeds.allocate(2)
        data = np.arange(2 * config.d_model, dtype=np.float32).reshape(2, -1)
        memory.embeds.write(ids, data)
        np.testing.assert_array_equal(memory.embeds.read(ids), data)
        assert memory.embeds.is_written(ids[0])

    def test_read_unallocated_rejected(self, memory):
        with pytest.raises(ResourceError):
            memory.embeds.read([0])

    def test_write_count_mismatch_rejected(self, memory, config):
        ids = memory.embeds.allocate(1)
        with pytest.raises(ResourceError):
            memory.embeds.write(ids, np.zeros((2, config.d_model), np.float32))

    def test_exhaustion(self, memory):
        memory.embeds.allocate(16)
        with pytest.raises(OutOfResourcesError):
            memory.embeds.allocate(1)

    def test_capacity_token_count(self, memory, config):
        assert memory.kv_tokens_capacity == 8 * config.kv_page_size


class TestKernelCostModel:
    def test_single_decode_matches_tpot(self, config):
        model = KernelCostModel(config)
        cost = model.forward_batch_cost([ForwardRow(1, 100)])
        assert cost * 1e3 == pytest.approx(config.cost.decode_ms_base, rel=0.01)

    def test_batching_is_sublinear(self, config):
        model = KernelCostModel(config)
        one = model.forward_batch_cost([ForwardRow(1)])
        many = model.forward_batch_cost([ForwardRow(1)] * 32)
        assert many < 32 * one
        assert many > one

    def test_prefill_scales_with_tokens(self, config):
        model = KernelCostModel(config)
        short = model.forward_batch_cost([ForwardRow(16)])
        long = model.forward_batch_cost([ForwardRow(512)])
        assert long > short

    def test_empty_batch_free(self, config):
        model = KernelCostModel(config)
        assert model.forward_batch_cost([]) == 0.0

    def test_context_term(self, config):
        model = KernelCostModel(config)
        small_ctx = model.forward_batch_cost([ForwardRow(1, 0)])
        big_ctx = model.forward_batch_cost([ForwardRow(1, 8192)])
        assert big_ctx > small_ctx

    def test_embed_and_sample_costs_positive(self, config):
        model = KernelCostModel(config)
        assert model.embed_batch_cost(10) > 0
        assert model.sample_batch_cost(1) > 0
        assert model.sample_batch_cost(8) > model.sample_batch_cost(1)

    def test_fused_equals_forward(self, config):
        model = KernelCostModel(config)
        rows = [ForwardRow(1, 256)] * 4
        assert model.fused_step_cost(rows) == model.forward_batch_cost(rows)

    def test_costs_ordered_by_model_size(self):
        costs = [
            KernelCostModel(get_model_config(name)).single_decode_step_ms()
            for name in ("llama-sim-1b", "llama-sim-3b", "llama-sim-8b")
        ]
        assert costs == sorted(costs)

    def test_misc_costs(self, config):
        model = KernelCostModel(config)
        assert model.copy_batch_cost(4) > model.copy_batch_cost(1)
        assert model.mask_batch_cost(4) > 0
        assert model.alloc_batch_cost(10) > 0
        assert model.prefill_ms(100) > model.single_decode_step_ms()


class TestSimDevice:
    def test_serial_execution_accumulates_time(self):
        sim = Simulator()
        device = SimDevice(sim)
        results = []

        async def main():
            f1 = device.submit("op", lambda: "a", cost_seconds=0.010)
            f2 = device.submit("op", lambda: "b", cost_seconds=0.020)
            results.append(await f1)
            results.append(await f2)

        sim.run_until_complete(main())
        assert results == ["a", "b"]
        assert sim.now == pytest.approx(0.030)
        assert device.stats.batches_executed == 2

    def test_busy_flag_and_idle_notification(self):
        sim = Simulator()
        device = SimDevice(sim)
        idle_times = []
        device.on_idle(lambda: idle_times.append(sim.now))

        device.submit("op", lambda: None, cost_seconds=0.005)
        assert device.busy
        sim.run()
        assert not device.busy
        assert idle_times == [pytest.approx(0.005)]

    def test_error_propagates_through_future(self):
        sim = Simulator()
        device = SimDevice(sim)

        def failing():
            raise ValueError("kernel crash")

        async def main():
            await device.submit("op", failing, cost_seconds=0.001)

        with pytest.raises(ValueError, match="kernel crash"):
            sim.run_until_complete(main())

    def test_negative_cost_rejected(self):
        sim = Simulator()
        device = SimDevice(sim)
        with pytest.raises(SimulationError):
            device.submit("op", lambda: None, cost_seconds=-1.0)

    def test_utilization(self):
        sim = Simulator()
        device = SimDevice(sim)
        device.submit("op", lambda: None, cost_seconds=0.5)
        sim.run()
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert device.utilization() == pytest.approx(0.5)

    def test_stats_by_kind(self):
        sim = Simulator()
        device = SimDevice(sim)
        device.submit("forward", lambda: None, cost_seconds=0.01, size=4)
        device.submit("embed", lambda: None, cost_seconds=0.01)
        sim.run()
        assert device.stats.batches_by_kind == {"forward": 1, "embed": 1}
        assert device.stats.items_executed == 5
