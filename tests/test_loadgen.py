"""Determinism and sanity of the open-loop load harness.

The load curves are only comparable across commits if the harness is a
pure function of its seed: the arrival schedule, the class draws, every
generated token and every derived metric must be bit-identical across
runs with the same seed, and must actually change with the seed.
"""

import pytest

from repro.bench.loadgen import (
    DEFAULT_MIX,
    DIURNAL_TRACE,
    build_arrivals,
    run_open_loop,
)


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        first = build_arrivals(200, 300.0, seed=42)
        second = build_arrivals(200, 300.0, seed=42)
        assert [a.time for a in first] == [a.time for a in second]
        assert [a.workload.name for a in first] == [a.workload.name for a in second]

    def test_different_seed_different_schedule(self):
        first = build_arrivals(200, 300.0, seed=42)
        second = build_arrivals(200, 300.0, seed=43)
        assert [a.time for a in first] != [a.time for a in second]

    def test_trace_mode_deterministic(self):
        first = build_arrivals(200, 300.0, seed=7, mode="trace")
        second = build_arrivals(200, 300.0, seed=7, mode="trace")
        assert [a.time for a in first] == [a.time for a in second]

    def test_times_strictly_ordered_and_positive(self):
        for mode in ("poisson", "trace"):
            arrivals = build_arrivals(300, 500.0, seed=3, mode=mode)
            times = [a.time for a in arrivals]
            assert all(t > 0 for t in times)
            assert times == sorted(times)

    def test_mix_weights_respected(self):
        arrivals = build_arrivals(3000, 300.0, seed=5)
        total = float(sum(cls.weight for cls in DEFAULT_MIX))
        for cls in DEFAULT_MIX:
            share = sum(1 for a in arrivals if a.workload.name == cls.name) / 3000
            assert share == pytest.approx(cls.weight / total, abs=0.05)

    def test_trace_shape_modulates_rate(self):
        """Arrivals in a high-multiplier bucket outnumber a low one's by
        roughly the multiplier ratio (the replay only spans the early
        buckets at this budget, so compare two it fully covers)."""
        period = 60.0
        arrivals = build_arrivals(4000, 400.0, seed=9, mode="trace", trace_period_s=period)
        bucket_s = period / len(DIURNAL_TRACE)
        counts = [0] * len(DIURNAL_TRACE)
        for a in arrivals:
            counts[int(a.time / bucket_s) % len(DIURNAL_TRACE)] += 1
        # Bucket 7 runs at 0.80x peak, bucket 2 at 0.28x: ~2.9x more load.
        assert counts[7] > counts[2] * 1.5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_arrivals(10, 0.0, seed=0)
        with pytest.raises(ValueError):
            build_arrivals(10, 100.0, seed=0, mode="bogus")
        with pytest.raises(ValueError):
            build_arrivals(10, 100.0, seed=0, mix=())


class TestRunDeterminism:
    def test_same_seed_identical_tokens_and_metrics(self):
        kwargs = dict(n_requests=60, offered_rate=200.0, seed=21, collect_outputs=True)
        first = run_open_loop(**kwargs)
        second = run_open_loop(**kwargs)
        assert first["outputs"] == second["outputs"]
        assert first["arrival_times"] == second["arrival_times"]
        assert first["arrival_classes"] == second["arrival_classes"]
        for key in (
            "duration_s",
            "finished",
            "goodput_count",
            "goodput_rate",
            "total_output_tokens",
            "processed_events",
            "events_per_request",
            "commands_dropped",
            "per_class",
        ):
            assert first[key] == second[key], key

    def test_trace_mode_run_deterministic(self):
        kwargs = dict(
            n_requests=60, offered_rate=200.0, seed=4, mode="trace", collect_outputs=True
        )
        first = run_open_loop(**kwargs)
        second = run_open_loop(**kwargs)
        assert first["outputs"] == second["outputs"]
        assert first["duration_s"] == second["duration_s"]

    def test_all_requests_complete_and_report(self):
        row = run_open_loop(n_requests=60, offered_rate=200.0, seed=21)
        assert row["finished"] == 60
        assert sum(cls["requests"] for cls in row["per_class"].values()) == 60
        # Every finished request carried real TTFT/TPOT samples.
        assert sum(cls["ttft"]["samples"] for cls in row["per_class"].values()) == 60
        assert sum(cls["tpot"]["samples"] for cls in row["per_class"].values()) == 60
