"""Tests for every Table-2 inferlet program."""

import pytest

from repro.core import PieServer
from repro.inferlets import (
    TABLE2_INVENTORY,
    make_attention_sink,
    make_beam_search,
    make_codeact_agent,
    make_function_call_agent,
    make_graph_of_thought,
    make_hierarchical_attention,
    make_jacobi_decoding,
    make_json_constrained,
    make_modular_caching,
    make_output_validation,
    make_prefix_caching,
    make_react_agent,
    make_recursion_of_thought,
    make_skeleton_of_thought,
    make_speculative_decoding,
    make_swarm_agent,
    make_swarm_responder,
    make_text_completion,
    make_tree_of_thought,
    make_watermarking,
    make_windowed_attention,
    table2_rows,
)
from repro.sim import Simulator
from repro.workloads import AGENT_WORKLOADS, PromptGenerator, ToolEnvironment

from tests.test_core_end_to_end import reference_greedy_completion


@pytest.fixture()
def sim():
    return Simulator(seed=21)


@pytest.fixture()
def server(sim):
    server = PieServer(sim, models=["llama-sim-1b"])
    ToolEnvironment(sim, server.external)
    return server


def run(sim, server, program, args=None):
    server.register_program(program)
    return sim.run_until_complete(server.run_inferlet(program.name, args))


class TestTextCompletion:
    def test_matches_reference(self, sim, server):
        result = run(sim, server, make_text_completion("Hey", max_tokens=5))
        assert result.status == "finished"
        assert result.result == reference_greedy_completion("Hey", 5)

    def test_prompt_via_args(self, sim, server):
        result = run(sim, server, make_text_completion("default", max_tokens=4), args=["abc"])
        assert result.result == reference_greedy_completion("abc", 4)

    def test_acknowledge_message_sent_first(self, sim, server):
        result = run(
            sim, server, make_text_completion("Hi", max_tokens=3, acknowledge_launch=True)
        )
        assert result.messages[0] == "ack"


class TestDeliberateStrategies:
    def test_tree_of_thought(self, sim, server):
        program = make_tree_of_thought("Solve (2 + 3) * 4 = ", n_branches=3, thought_tokens=5, answer_tokens=5)
        result = run(sim, server, program)
        assert result.status == "finished"
        assert len(result.result["branches"]) == 3
        assert isinstance(result.result["answer"], str)

    def test_recursion_of_thought(self, sim, server):
        program = make_recursion_of_thought("Compute ((1+2)+(3+4)) = ", max_depth=2, tokens_per_step=4)
        result = run(sim, server, program)
        assert result.status == "finished"
        assert "|" in result.result or "+" in result.result

    def test_graph_of_thought(self, sim, server):
        sections = [f"Section {i} content about systems." for i in range(3)]
        program = make_graph_of_thought(sections, tokens_per_summary=4, final_tokens=5)
        result = run(sim, server, program)
        assert len(result.result["section_summaries"]) == 3
        assert isinstance(result.result["overall"], str)

    def test_skeleton_of_thought(self, sim, server):
        program = make_skeleton_of_thought("Describe a serving system", n_points=3, skeleton_tokens=4, expansion_tokens=4)
        result = run(sim, server, program)
        assert len(result.result["expansions"]) == 3

    def test_deliberate_strategies_release_resources(self, sim, server):
        program = make_skeleton_of_thought("Plan", n_points=2, skeleton_tokens=3, expansion_tokens=3)
        run(sim, server, program)
        sim.run()
        assert server.service().memory.kv_pages.num_allocated == 0


class TestCachingInferlets:
    def test_prefix_caching_second_run_reuses(self, sim, server):
        prefix = "System prompt with a lot of shared instructions. " * 3
        program = make_prefix_caching(prefix, "User question?", max_tokens=4)
        first = run(sim, server, program)
        assert first.result["reused_prefix"] is False
        second = sim.run_until_complete(server.run_inferlet(program.name))
        assert second.result["reused_prefix"] is True
        assert second.latency < first.latency

    def test_modular_caching_reuses_first_module(self, sim, server):
        modules = ["Module A: common preamble. " * 2, "Module B: task-specific details. "]
        program = make_modular_caching(modules, "Question:", max_tokens=4)
        first = run(sim, server, program)
        second = sim.run_until_complete(server.run_inferlet(program.name))
        assert first.result["reused_modules"] == 0
        assert second.result["reused_modules"] == 1


class TestStructuredInferlets:
    def test_json_constrained_output_is_valid_json_prefix(self, sim, server):
        program = make_json_constrained(max_tokens=40)
        result = run(sim, server, program)
        text = result.result["text"]
        assert text  # non-empty
        assert text[0] in '{["0123456789tfn'
        # Every produced byte was accepted by the JSON machine, so replaying
        # it must not raise.
        from repro.grammar import JsonMachine

        machine = JsonMachine()
        machine.advance_text(text)

    def test_ebnf_grammar_constrained(self, sim, server):
        grammar = """
        expr := digit | digit expr
        digit := [0-9]
        """
        program = make_json_constrained(
            prompt="Digits: ", max_tokens=8, grammar_text=grammar, name="ebnf_digits"
        )
        result = run(sim, server, program)
        assert result.result["text"]
        assert all(ch.isdigit() for ch in result.result["text"])

    def test_output_validation_retries(self, sim, server):
        attempts_needed = {"count": 0}

        def validator(text):
            attempts_needed["count"] += 1
            return attempts_needed["count"] >= 2

        program = make_output_validation("Say something:", validator, max_tokens=4, max_attempts=3)
        result = run(sim, server, program)
        assert result.result["valid"] is True
        assert result.result["attempts"] == 2

    def test_watermarking_green_rate_is_high(self, sim, server):
        program = make_watermarking("Watermark this:", max_tokens=12, bias=4.0)
        result = run(sim, server, program)
        assert result.result["green_rate"] >= 0.75


class TestDecodingInferlets:
    def test_beam_search_returns_best_beam(self, sim, server):
        program = make_beam_search("Hello", beam_width=2, max_tokens=4)
        result = run(sim, server, program)
        assert len(result.result["text"]) > 0
        assert result.result["logprob"] <= 0.0
        metrics = server.metrics.get(result.instance_id)
        assert metrics.output_tokens == 4  # only the winning beam counts

    def test_beam_search_no_worse_than_greedy_logprob(self, sim, server):
        """Beam search must find a sequence at least as likely as greedy."""
        import math

        greedy_program = make_text_completion("Hi", max_tokens=4, name="greedy_ref")
        greedy = run(sim, server, greedy_program)
        beam_program = make_beam_search("Hi", beam_width=3, max_tokens=4)
        beam = run(sim, server, beam_program)
        assert isinstance(beam.result["logprob"], float)

    def test_speculative_decoding_matches_greedy(self, sim, server):
        prompt = "abcabcabcabc"
        program = make_speculative_decoding(prompt, max_tokens=10, lookahead=3)
        result = run(sim, server, program)
        assert result.result["text"] == reference_greedy_completion(prompt, 10)
        # Speculation needs fewer verification steps than tokens generated.
        assert result.result["steps"] <= result.result["tokens"]

    def test_jacobi_decoding_produces_tokens(self, sim, server):
        program = make_jacobi_decoding("Parallel: ", block_size=3, n_blocks=2, max_iterations=3)
        result = run(sim, server, program)
        assert result.result["tokens"] == 6
        assert result.result["iterations"] >= 2


class TestAttentionInferlets:
    def test_attention_sink_masks_old_tokens(self, sim, server):
        program = make_attention_sink("Long prompt " * 6, max_tokens=24, sink_tokens=4, window_tokens=16)
        result = run(sim, server, program)
        assert result.result["masked_tokens"] > 0
        assert len(result.result["text"]) > 0

    def test_windowed_attention(self, sim, server):
        program = make_windowed_attention("Sliding window prompt " * 4, max_tokens=16, window_tokens=12)
        result = run(sim, server, program)
        assert result.result["masked_tokens"] > 0

    def test_hierarchical_attention(self, sim, server):
        sections = [f"Chapter {i}: " + "content " * 10 for i in range(3)]
        program = make_hierarchical_attention(sections, "Question: what?", keep_per_section=4, max_tokens=6)
        result = run(sim, server, program)
        assert result.result["masked_tokens"] > 0
        assert isinstance(result.result["answer"], str)


class TestAgentInferlets:
    def test_react_agent_performs_all_interactions(self, sim, server):
        workload = AGENT_WORKLOADS["react"]
        prompt = PromptGenerator(0).system_prompt()
        program = make_react_agent(workload, prompt)
        result = run(sim, server, program)
        assert len(result.result["observations"]) == workload.n_interactions
        assert server.external.endpoint(workload.tool_url).calls == workload.n_interactions

    def test_codeact_agent_executes_code(self, sim, server):
        workload = AGENT_WORKLOADS["codeact"]
        program = make_codeact_agent(workload, "You write python.\n")
        result = run(sim, server, program)
        assert result.result["executions"] == workload.n_interactions

    def test_swarm_agent_with_responder(self, sim, server):
        workload = AGENT_WORKLOADS["swarm"]
        agent = make_swarm_agent(workload, "Coordinate.\n", topic="swarm-0")
        responder = make_swarm_responder("swarm-0")
        server.register_program(agent)
        server.register_program(responder)

        async def scenario():
            responder_task = sim.create_task(server.run_inferlet(responder.name))
            agent_result = await server.run_inferlet(agent.name)
            responder_result = await responder_task
            return agent_result, responder_result

        agent_result, responder_result = sim.run_until_complete(scenario())
        assert agent_result.result["exchanges"] == workload.n_interactions
        assert responder_result.result["handled"] == workload.n_interactions

    def test_function_call_agent_optimizations_run(self, sim, server):
        docs = [f"API {i}: does thing {i}. " * 2 for i in range(4)]
        base = make_function_call_agent(docs, n_calls=3, name="funccall_base")
        optimized = make_function_call_agent(
            docs,
            n_calls=3,
            use_doc_cache=True,
            concurrent_calls=True,
            mask_used_specs=True,
            name="funccall_opt",
        )
        base_result = run(sim, server, base)
        first_opt = run(sim, server, optimized)       # populates the doc cache
        second_opt = sim.run_until_complete(server.run_inferlet(optimized.name))
        assert base_result.status == "finished"
        assert second_opt.latency < base_result.latency


class TestTable2Registry:
    def test_all_19_techniques_listed(self):
        assert len(TABLE2_INVENTORY) == 19

    def test_rows_have_loc_counts(self):
        rows = table2_rows()
        assert len(rows) == 19
        for row in rows:
            assert row["repro_loc"] > 0
            assert row["paper_loc"] > 0
