"""Unit tests for the QoS subsystem (repro.core.qos).

Covers the token bucket, tenant-spec validation, admission decisions
(admit / queue-with-backpressure / typed rejection), the admission pump,
SLO slack scoring and candidate-batch selection, preemption victim
ordering, fair-share accounting, and the structural inertness of the
``qos=off`` configuration.
"""

import pytest

from repro.core import InferletProgram, InferletInstance, PieServer, TenantSpec
from repro.core.batching import CandidateBatch
from repro.core.command_queue import Command, CommandQueue
from repro.core.config import ControlLayerConfig, PieConfig
from repro.core.metrics import SystemMetrics, percentile
from repro.core.qos import (
    CLASS_RANK,
    CLASS_WEIGHT,
    QOS_CLASSES,
    QosService,
    TokenBucket,
)
from repro.errors import AdmissionRejectedError, InferletTerminated, ReproError
from repro.sim import Simulator


async def _noop(ctx):  # pragma: no cover - never run in these tests
    return None


def make_instance(name="prog", tenant="acme", seed=0):
    program = InferletProgram(name=name, main=_noop)
    return InferletInstance(program, tenant=tenant, seed=seed)


def make_service(sim, *specs, metrics=None, aging_ms=200.0):
    return QosService(
        sim, metrics or SystemMetrics(), tenants=tuple(specs), aging_ms=aging_ms
    )


class TestTokenBucket:
    def test_unlimited_when_rate_zero(self):
        bucket = TokenBucket(0.0, burst=1)
        assert all(bucket.try_take(now=0.0) for _ in range(100))
        assert bucket.seconds_until_available(0.0) == 0.0

    def test_burst_then_refill(self):
        bucket = TokenBucket(10.0, burst=2, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # One token refills after 0.1 s at 10/s.
        assert bucket.seconds_until_available(0.0) == pytest.approx(0.1)
        assert not bucket.try_take(0.05)
        assert bucket.try_take(0.1)

    def test_level_capped_at_burst(self):
        bucket = TokenBucket(100.0, burst=3, now=0.0)
        for _ in range(3):
            assert bucket.try_take(0.0)
        # A long idle period refills to the cap, not beyond.
        for _ in range(3):
            assert bucket.try_take(10.0)
        assert not bucket.try_take(10.0)


class TestTenantSpec:
    def test_class_validation(self):
        with pytest.raises(ReproError):
            TenantSpec(name="x", priority_class="platinum")

    def test_rate_and_bounds_validation(self):
        with pytest.raises(ReproError):
            TenantSpec(name="x", rate_per_s=-1)
        with pytest.raises(ReproError):
            TenantSpec(name="x", burst=0)
        with pytest.raises(ReproError):
            TenantSpec(name="x", max_concurrent=-1)
        with pytest.raises(ReproError):
            TenantSpec(name="", priority_class="standard")
        with pytest.raises(ReproError):
            TenantSpec(name="x", weight=0.0)

    def test_per_class_slo_defaults(self):
        interactive = TenantSpec(name="a", priority_class="interactive")
        batch = TenantSpec(name="b", priority_class="batch")
        assert interactive.ttft_slo_s < batch.ttft_slo_s
        assert interactive.tpot_slo_s < batch.tpot_slo_s
        custom = TenantSpec(name="c", priority_class="batch", ttft_slo_ms=42.0)
        assert custom.ttft_slo_s == pytest.approx(0.042)

    def test_duplicate_tenant_rejected_by_config(self):
        specs = (TenantSpec(name="a"), TenantSpec(name="a"))
        with pytest.raises(ReproError):
            PieConfig(control=ControlLayerConfig(qos=True, tenants=specs))


class TestAdmission:
    def test_admit_within_budget(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme", max_concurrent=2))
        launched = []
        decision = qos.request_admission(
            make_instance(tenant="acme"), proceed=lambda: launched.append(1)
        )
        assert decision == "admit"
        assert launched == []  # caller proceeds synchronously on admit
        assert qos.metrics.qos_admitted == 1

    def test_queue_then_pump_on_finish(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme", max_concurrent=1))
        first = make_instance(tenant="acme")
        second = make_instance(tenant="acme")
        assert qos.request_admission(first, proceed=lambda: None) == "admit"
        resumed = []
        assert (
            qos.request_admission(second, proceed=lambda: resumed.append(second))
            == "queued"
        )
        assert qos.metrics.qos_queued == 1
        assert not resumed
        first.metrics.status = "finished"
        qos.note_finished(first)
        assert resumed == [second]
        record = qos.metrics.tenants["acme"]
        assert record.admitted == 2
        assert record.finished == 1

    def test_note_finished_is_idempotent(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme", max_concurrent=1))
        instance = make_instance(tenant="acme")
        qos.request_admission(instance, proceed=lambda: None)
        instance.metrics.status = "finished"
        qos.note_finished(instance)
        qos.note_finished(instance)
        assert qos.metrics.tenants["acme"].finished == 1

    def test_reject_when_queue_full(self):
        sim = Simulator()
        qos = make_service(
            sim, TenantSpec(name="acme", max_concurrent=1, max_queued=1)
        )
        qos.request_admission(make_instance(tenant="acme"), proceed=lambda: None)
        qos.request_admission(make_instance(tenant="acme"), proceed=lambda: None)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            qos.request_admission(make_instance(tenant="acme"), proceed=lambda: None)
        assert excinfo.value.tenant == "acme"
        assert qos.metrics.qos_rejected == 1
        assert qos.metrics.tenants["acme"].rejected == 1

    def test_rate_limit_queues_until_bucket_refills(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme", rate_per_s=10.0, burst=1))
        admitted_at = []
        assert (
            qos.request_admission(
                make_instance(tenant="acme"), proceed=lambda: None
            )
            == "admit"
        )
        assert (
            qos.request_admission(
                make_instance(tenant="acme"),
                proceed=lambda: admitted_at.append(sim.now),
            )
            == "queued"
        )

        async def wait():
            await sim.sleep(0.5)

        sim.run_until_complete(wait())
        # The refill timer admits the parked launch once a token is back.
        assert admitted_at == [pytest.approx(0.1)]

    def test_unregistered_tenant_gets_default_spec(self):
        sim = Simulator()
        qos = make_service(sim)
        assert (
            qos.request_admission(make_instance(tenant="guest"), proceed=lambda: None)
            == "admit"
        )
        assert qos.tenant_spec("guest").priority_class == "standard"

    def test_reporting_reads_never_register_tenants(self):
        """tenant_spec/slo_attainment are read-only: unknown names raise
        instead of silently inserting a TenantMetrics record."""
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme"))
        with pytest.raises(ReproError):
            qos.tenant_spec("typo")
        with pytest.raises(ReproError):
            qos.slo_attainment("typo")
        assert qos.tenant_names() == ["acme"]
        assert set(qos.metrics.tenants) == {"acme"}

    def test_fifo_order_within_tenant_queue(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme", max_concurrent=1))
        first = make_instance(tenant="acme")
        qos.request_admission(first, proceed=lambda: None)
        order = []
        for tag in ("a", "b"):
            qos.request_admission(
                make_instance(tenant="acme"),
                proceed=lambda tag=tag: order.append(tag),
            )
        first.metrics.status = "finished"
        qos.note_finished(first)
        assert order == ["a"]  # one slot freed, head of the queue only


def _admit(qos, instance):
    qos.request_admission(instance, proceed=lambda: None)
    return instance


def _forward(sim, instance, issue_time=0.0):
    return Command(
        kind="forward",
        inferlet_id=instance.instance_id,
        payload={},
        future=sim.create_future(),
        issue_time=issue_time,
    )


class TestSlackDispatch:
    def specs(self):
        return (
            TenantSpec(name="chat", priority_class="interactive"),
            TenantSpec(name="jobs", priority_class="batch"),
        )

    def test_interactive_deadline_beats_batch(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))
        # Batch issued earlier: pure longest-waiting would pick it.
        candidates = {
            "forward": CandidateBatch("forward", [_forward(sim, jobs, 0.0)]),
            "sample": CandidateBatch("sample", [_forward(sim, chat, 0.01)]),
        }
        chosen = qos.select_batch(candidates)
        assert chosen.commands[0].inferlet_id == chat.instance_id

    def test_edf_within_class(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        early = _admit(qos, make_instance(name="e", tenant="chat"))
        late = _admit(qos, make_instance(name="l", tenant="chat"))
        early.metrics.launched_at = 0.0
        late.metrics.launched_at = 0.05  # later deadline
        candidates = {
            "forward": CandidateBatch("forward", [_forward(sim, late, 0.01)]),
            "sample": CandidateBatch("sample", [_forward(sim, early, 0.01)]),
        }
        chosen = qos.select_batch(candidates)
        assert chosen.commands[0].inferlet_id == early.instance_id

    def test_aging_bounds_starvation(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs(), aging_ms=100.0)
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))

        async def advance():
            await sim.sleep(0.2)

        sim.run_until_complete(advance())
        # The batch command has waited past the aging bound: it is served
        # FCFS ahead of the fresher interactive command.
        candidates = {
            "forward": CandidateBatch("forward", [_forward(sim, jobs, 0.0)]),
            "sample": CandidateBatch("sample", [_forward(sim, chat, sim.now)]),
        }
        chosen = qos.select_batch(candidates)
        assert chosen.commands[0].inferlet_id == jobs.instance_id

    def test_queue_priority_stride_orders_classes(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))
        chat_queue = CommandQueue(key="cq", model="m", owner=chat.instance_id)
        jobs_queue = CommandQueue(
            key="jq", model="m", owner=jobs.instance_id, priority=500
        )
        # Class dominates: even a large in-class priority cannot outrank a
        # better class; in-class, the queue priority still breaks ties.
        assert qos.queue_priority(chat_queue) > qos.queue_priority(jobs_queue)
        boosted = CommandQueue(
            key="cq2", model="m", owner=chat.instance_id, priority=3
        )
        assert qos.queue_priority(boosted) == qos.queue_priority(chat_queue) + 3

    def test_user_priority_cannot_cross_class_stride(self):
        """No user-supplied queue priority — however extreme — may let a
        worse class outrank a better one (the in-class bias is clamped)."""
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))
        chat_sandbagged = CommandQueue(
            key="cq", model="m", owner=chat.instance_id, priority=-(10**9)
        )
        jobs_boosted = CommandQueue(
            key="jq", model="m", owner=jobs.instance_id, priority=10**9
        )
        assert qos.queue_priority(chat_sandbagged) > qos.queue_priority(jobs_boosted)

    def test_fair_share_vtime_charges_by_weight(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))
        qos.note_dispatched([_forward(sim, chat), _forward(sim, jobs)])
        record = qos.metrics.tenants
        # Same work, but the batch class's smaller weight accrues virtual
        # time faster (it consumes its fair share sooner).
        assert record["jobs"].virtual_tokens > record["chat"].virtual_tokens > 0
        assert record["chat"].dispatched_commands == 1

    def test_placement_weight_follows_class(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        chat = _admit(qos, make_instance(name="c", tenant="chat"))
        jobs = _admit(qos, make_instance(name="j", tenant="jobs"))
        assert qos.placement_weight(chat.instance_id) == CLASS_WEIGHT["interactive"]
        assert qos.placement_weight(jobs.instance_id) == CLASS_WEIGHT["batch"]
        assert qos.placement_weight("never-admitted") == 1.0


class TestVictimOrdering:
    def specs(self):
        return (
            TenantSpec(name="chat", priority_class="interactive"),
            TenantSpec(name="std", priority_class="standard"),
            TenantSpec(name="jobs", priority_class="batch"),
        )

    def test_lowest_class_preempted_first(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        instances = [
            _admit(qos, make_instance(name=n, tenant=t))
            for n, t in (("c", "chat"), ("s", "std"), ("j", "jobs"))
        ]
        ordered = sorted(instances, key=qos.victim_key)
        assert [i.tenant for i in ordered] == ["jobs", "std", "chat"]

    def test_most_slack_first_within_class(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        near = _admit(qos, make_instance(name="near", tenant="jobs"))
        far = _admit(qos, make_instance(name="far", tenant="jobs"))

        async def advance():
            await sim.sleep(1.0)

        sim.run_until_complete(advance())
        # ``near`` produced a token long ago: its TPOT deadline is closer
        # than ``far``'s fresh one, so ``far`` has more slack and goes first.
        near.metrics.note_output(0.1)
        far.metrics.note_output(sim.now)
        ordered = sorted([near, far], key=qos.victim_key)
        assert ordered[0] is far

    def test_page_yield_breaks_ties(self):
        sim = Simulator()
        qos = make_service(sim, *self.specs())
        a = _admit(qos, make_instance(name="a", tenant="jobs"))
        b = _admit(qos, make_instance(name="b", tenant="jobs"))
        assert qos.victim_key(a, n_pages=8) < qos.victim_key(a, n_pages=2)
        # Same slack/pages: deterministic instance-id tie-break.
        assert qos.victim_key(a, 4) != qos.victim_key(b, 4)


class TestAbortWhileParked:
    def test_abort_in_admission_queue_sticks(self):
        """Aborting an inferlet parked in the QoS admission queue must not
        be undone when the queue later pumps: the inferlet never runs."""
        from repro.core.config import ControlLayerConfig, PieConfig
        from repro.sim import Simulator as Sim

        sim = Sim(seed=0)
        server = PieServer(
            sim,
            config=PieConfig(
                control=ControlLayerConfig(
                    qos=True,
                    tenants=(TenantSpec(name="jobs", max_concurrent=1),),
                )
            ),
        )
        ran = []

        async def job(ctx):
            ran.append(ctx.instance_id)
            await ctx._sim.sleep(0.05)
            return "done"

        server.register_program(InferletProgram(name="job", main=job))
        first, _ready1 = server.launch("job", tenant="jobs")
        parked, ready2 = server.launch("job", tenant="jobs")

        async def abort_then_drain():
            await sim.sleep(0.001)  # parked is still waiting for the slot
            server.lifecycle.abort(parked, reason="client abort")
            # The abort resolves the parked launch's ready future at once:
            # an awaiting client sees the termination instead of hanging.
            assert isinstance(ready2.exception(), InferletTerminated)
            await server.lifecycle.wait_for_completion(first)
            await sim.sleep(0.2)  # give the pump every chance to resurrect it

        sim.run_until_complete(abort_then_drain())
        assert parked.status == "terminated"
        assert len(ran) == 1  # only the first job ever executed
        assert server.metrics.tenants["jobs"].admitted == 1

    def test_aborted_parked_launch_frees_its_max_queued_slot(self):
        """A corpse in the admission queue must not cause spurious
        max_queued rejections for live launches."""
        from repro.core.config import ControlLayerConfig, PieConfig
        from repro.sim import Simulator as Sim

        sim = Sim(seed=0)
        server = PieServer(
            sim,
            config=PieConfig(
                control=ControlLayerConfig(
                    qos=True,
                    tenants=(
                        TenantSpec(name="jobs", max_concurrent=1, max_queued=1),
                    ),
                )
            ),
        )

        async def job(ctx):
            await ctx._sim.sleep(0.05)
            return "done"

        server.register_program(InferletProgram(name="job", main=job))
        server.launch("job", tenant="jobs")
        parked, _ready = server.launch("job", tenant="jobs")  # fills the queue
        server.lifecycle.abort(parked, reason="client abort")
        # The queue slot is free again immediately: this must not raise.
        replacement, _ready2 = server.launch("job", tenant="jobs")

        async def drain():
            await sim.sleep(0.5)

        sim.run_until_complete(drain())
        assert replacement.status == "finished"

    def test_abort_in_launch_queue_fails_ready_future(self):
        """An abort between admission and instantiation resolves the ready
        future with InferletTerminated instead of running the program."""
        from repro.sim import Simulator as Sim

        sim = Sim(seed=0)
        server = PieServer(sim)  # qos off: the pre-existing launch queue path
        ran = []

        async def job(ctx):
            ran.append(1)
            return "done"

        server.register_program(InferletProgram(name="job", main=job))
        # Two launches: the second sits in the serialized launch queue.
        server.launch("job")
        parked, ready = server.launch("job")
        server.controller.terminate_inferlet(parked, reason="client abort")

        async def drain():
            await sim.sleep(0.5)

        sim.run_until_complete(drain())
        assert parked.status == "terminated"
        assert len(ran) == 1
        assert isinstance(ready.exception(), InferletTerminated)


class TestSloAttainment:
    def test_attainment_fraction(self):
        sim = Simulator()
        qos = make_service(
            sim, TenantSpec(name="acme", ttft_slo_ms=100.0, tpot_slo_ms=50.0)
        )
        record = qos.metrics.tenants["acme"]
        spec = qos.tenant_spec("acme")
        record.observe_ttft(0.05, slo_s=spec.ttft_slo_s)  # hit
        record.observe_ttft(0.2, slo_s=spec.ttft_slo_s)  # miss
        record.observe_tpot(0.01, slo_s=spec.tpot_slo_s)  # hit
        record.observe_tpot(0.04, slo_s=spec.tpot_slo_s)  # hit
        assert qos.slo_attainment("acme") == 3 / 4

    def test_no_samples_counts_as_full_attainment(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme"))
        assert qos.slo_attainment("acme") == 1.0


class TestQosOffInertness:
    def test_no_service_and_no_hooks_when_off(self):
        sim = Simulator()
        server = PieServer(sim)
        assert server.controller.qos is None
        service = server.service()
        assert service.swap.qos is None
        assert service.router.placement_weight is None
        assert service.scheduler._qos is None
        assert server.metrics.tenants == {}

    def test_tenants_shorthand_enables_service(self):
        sim = Simulator()
        server = PieServer(sim, tenants=[TenantSpec(name="acme")])
        assert server.controller.qos is not None
        assert server.config.control.qos is True
        assert server.controller.qos.tenant_names() == ["acme"]

    def test_qos_classes_cover_rank_and_weight_tables(self):
        assert set(QOS_CLASSES) == set(CLASS_RANK) == set(CLASS_WEIGHT)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert percentile(samples, 50) == 0.2
        assert percentile(samples, 99) == 0.4
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 50) == 7.0


class TestTpotSamples:
    def test_bulk_recorded_stream_yields_no_tpot_sample(self):
        """A program that records all its output tokens at once carries no
        decode-timing information: tpot must be None, not a 0.0 sample
        that would trivially satisfy any TPOT SLO."""
        from repro.core.metrics import InferletMetrics

        bulk = InferletMetrics(inferlet_id="bulk")
        bulk.note_output(now=1.0, count=8)
        assert bulk.tpot is None

        streamed = InferletMetrics(inferlet_id="stream")
        for step in range(4):
            streamed.note_output(now=0.01 * step, count=1)
        assert streamed.tpot == pytest.approx(0.01)

    def test_note_finished_skips_bulk_streams(self):
        sim = Simulator()
        qos = make_service(sim, TenantSpec(name="acme"))
        instance = make_instance(tenant="acme")
        qos.request_admission(instance, proceed=lambda: None)
        instance.metrics.note_output(now=0.5, count=8)
        instance.metrics.status = "finished"
        qos.note_finished(instance)
        assert qos.metrics.tenants["acme"].tpot.total == 0
