"""The CI perf gate: baseline-vs-fresh artifact comparison."""

import json

from repro.tools.perf_gate import compare, main


class TestCompare:
    def test_within_tolerance_passes(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 105.0}
        )
        assert failures == []

    def test_regression_fails(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 115.0}
        )
        assert len(failures) == 1
        assert "events_per_request_10k" in failures[0]

    def test_improvement_passes(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 60.0}
        )
        assert failures == []

    def test_metric_new_in_fresh_passes(self):
        assert compare({}, {"events_per_request_10k": 100.0}) == []

    def test_metric_dropped_from_fresh_fails(self):
        failures = compare({"events_per_request_10k": 100.0}, {})
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_custom_metrics_and_tolerance(self):
        baseline = {"a": 10.0, "b": 10.0}
        fresh = {"a": 10.4, "b": 12.0}
        failures = compare(baseline, fresh, metrics=("a", "b"), tolerance=0.05)
        assert len(failures) == 1
        assert failures[0].startswith("b:")


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps({"events_per_request_10k": 100.0}))
        fresh.write_text(json.dumps({"events_per_request_10k": 101.0}))
        assert main([str(baseline), str(fresh)]) == 0
        fresh.write_text(json.dumps({"events_per_request_10k": 150.0}))
        assert main([str(baseline), str(fresh)]) == 1

    def test_missing_baseline_accepts_fresh(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"events_per_request_10k": 100.0}))
        assert main([str(tmp_path / "absent.json"), str(fresh)]) == 0
