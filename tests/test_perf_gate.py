"""The CI perf gate: baseline-vs-fresh artifact comparison."""

import json

from repro.tools.perf_gate import compare, main


class TestCompare:
    def test_within_tolerance_passes(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 105.0}
        )
        assert failures == []

    def test_regression_fails(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 115.0}
        )
        assert len(failures) == 1
        assert "events_per_request_10k" in failures[0]

    def test_improvement_passes(self):
        failures = compare(
            {"events_per_request_10k": 100.0}, {"events_per_request_10k": 60.0}
        )
        assert failures == []

    def test_metric_new_in_fresh_passes(self):
        assert compare({}, {"events_per_request_10k": 100.0}) == []

    def test_metric_dropped_from_fresh_fails(self):
        failures = compare({"events_per_request_10k": 100.0}, {})
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_custom_metrics_and_tolerance(self):
        baseline = {"a": 10.0, "b": 10.0}
        fresh = {"a": 10.4, "b": 12.0}
        failures = compare(baseline, fresh, metrics=("a", "b"), tolerance=0.05)
        assert len(failures) == 1
        assert failures[0].startswith("b:")


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps({"events_per_request_10k": 100.0}))
        fresh.write_text(json.dumps({"events_per_request_10k": 101.0}))
        assert main([str(baseline), str(fresh)]) == 0
        fresh.write_text(json.dumps({"events_per_request_10k": 150.0}))
        assert main([str(baseline), str(fresh)]) == 1

    def test_missing_baseline_accepts_fresh(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"events_per_request_10k": 100.0}))
        assert main([str(tmp_path / "absent.json"), str(fresh)]) == 0

    def test_multiple_pairs_pass(self, tmp_path):
        paths = []
        for name, value in (
            ("a_base", 100.0),
            ("a_fresh", 101.0),
            ("b_base", 50.0),
            ("b_fresh", 49.0),
        ):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps({"events_per_request_10k": value}))
            paths.append(str(path))
        assert main(paths) == 0

    def test_multiple_pairs_report_all_regressions(self, tmp_path, capsys):
        paths = []
        for name, value in (
            ("a_base", 100.0),
            ("a_fresh", 150.0),  # regression 1
            ("b_base", 50.0),
            ("b_fresh", 49.0),  # fine
            ("c_base", 10.0),
            ("c_fresh", 20.0),  # regression 2
        ):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps({"events_per_request_10k": value}))
            paths.append(str(path))
        assert main(paths) == 1
        out = capsys.readouterr().out
        # Both regressions reported, each prefixed with its fresh artifact.
        assert out.count("FAIL") == 2
        assert "a_fresh.json:" in out
        assert "c_fresh.json:" in out

    def test_multiple_pairs_missing_baseline_is_per_pair(self, tmp_path):
        fresh_a = tmp_path / "a_fresh.json"
        fresh_a.write_text(json.dumps({"events_per_request_10k": 100.0}))
        base_b = tmp_path / "b_base.json"
        fresh_b = tmp_path / "b_fresh.json"
        base_b.write_text(json.dumps({"events_per_request_10k": 10.0}))
        fresh_b.write_text(json.dumps({"events_per_request_10k": 20.0}))
        # Pair A has no baseline (accepted); pair B still regresses.
        assert (
            main(
                [
                    str(tmp_path / "absent.json"),
                    str(fresh_a),
                    str(base_b),
                    str(fresh_b),
                ]
            )
            == 1
        )

    def test_odd_artifact_count_is_an_error(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text("{}")
        try:
            main([str(fresh), str(fresh), str(fresh)])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected SystemExit from argparse error")
