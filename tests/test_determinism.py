"""Determinism regression for the full cluster + swap + prefix-cache stack.

Two identical seeded simulations must produce bit-identical SystemMetrics
(and finish at the same virtual time).  This guards against wall-clock
time, unseeded randomness or iteration-order nondeterminism leaking into
the simulator — the property every experiment in this repo rests on.
"""

from dataclasses import asdict

from repro.core import InferletProgram, PieServer
from repro.core.config import ControlLayerConfig, PieConfig
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.sim.latency import ConstantLatency
from repro.support import Context, SamplingParams

TOOL_URL = "http://tools/slow-crm"
PROMPT = (
    "System: you are one agent in a determinism regression fleet; answer "
    "tersely and deterministically, every single run. "
)


def make_agent(index):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(PROMPT + f"Task {index}. ")
        await context.generate_until(max_tokens=2 + index % 2)
        observation = await ctx.http_get(TOOL_URL)
        await context.fill(f"obs:{observation} ")
        answer = await context.generate_until(max_tokens=2)
        context.free()
        return answer

    return InferletProgram(name=f"det{index}", main=main, prefix_hint=PROMPT)


def run_stack(seed=7, n_agents=6):
    """Cluster of 2 devices + host KV tier + prefix cache, staggered fleet."""
    sim = Simulator(seed=seed)
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=96, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            prefix_cache=True, placement_policy="cache_affinity"
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.2))
    programs = [make_agent(i) for i in range(n_agents)]
    for program in programs:
        server.register_program(program)

    async def one(program, delay):
        await sim.sleep(delay)
        return await server.run_inferlet(program.name)

    async def run_all():
        tasks = [
            sim.create_task(one(p, i * 0.15)) for i, p in enumerate(programs)
        ]
        return await sim.gather(tasks)

    results = sim.run_until_complete(run_all())
    metrics = asdict(server.metrics)
    # Instance ids embed a process-global launch counter (det0-1 vs det0-7
    # on a second run); re-key the per-inferlet block by program name so
    # only *simulation* state is compared.
    per_inferlet = {}
    for instance_id, record in metrics.pop("per_inferlet").items():
        record = dict(record)
        record.pop("inferlet_id")
        per_inferlet[instance_id.rsplit("-", 1)[0]] = record
    metrics["per_inferlet"] = per_inferlet
    return {
        "now": sim.now,
        "results": [(r.status, r.result) for r in results],
        "metrics": metrics,
    }


def test_identical_seeded_runs_are_bit_identical():
    first = run_stack()
    second = run_stack()
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    # The scenario actually exercises the stack under test.
    assert first["metrics"]["prefix_cache_hits"] > 0
    assert first["metrics"]["swap_outs"] > 0


def test_different_seeds_still_complete():
    run = run_stack(seed=8)
    assert all(status == "finished" for status, _ in run["results"])
