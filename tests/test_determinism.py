"""Determinism regression for the full cluster + swap + prefix-cache stack.

Two identical seeded simulations must produce bit-identical SystemMetrics
(and finish at the same virtual time).  This guards against wall-clock
time, unseeded randomness or iteration-order nondeterminism leaking into
the simulator — the property every experiment in this repo rests on.
"""

from dataclasses import asdict

from repro.core import InferletProgram, PieServer, TenantSpec
from repro.core.config import ControlLayerConfig, PieConfig
from repro.gpu.config import GpuConfig
from repro.sim import Simulator
from repro.sim.latency import ConstantLatency
from repro.support import Context, SamplingParams

TOOL_URL = "http://tools/slow-crm"
PROMPT = (
    "System: you are one agent in a determinism regression fleet; answer "
    "tersely and deterministically, every single run. "
)


def make_agent(index):
    async def main(ctx):
        context = Context(ctx, sampling=SamplingParams())
        await context.fill(PROMPT + f"Task {index}. ")
        await context.generate_until(max_tokens=2 + index % 2)
        observation = await ctx.http_get(TOOL_URL)
        await context.fill(f"obs:{observation} ")
        answer = await context.generate_until(max_tokens=2)
        context.free()
        return answer

    return InferletProgram(name=f"det{index}", main=main, prefix_hint=PROMPT)


def run_stack(
    seed=7,
    n_agents=6,
    qos=False,
    chunked=False,
    disagg=False,
    tracing=False,
    monitoring=False,
    faults=False,
    fault_plan=(),
    fault_seed=0,
):
    """Cluster of 2 devices + host KV tier + prefix cache, staggered fleet.

    ``qos=True`` layers the multi-tenant QoS service on top (tenant
    admission, slack dispatch, class-aware preemption): the determinism
    guarantee must hold for the full stack, and ``qos=False`` must take
    the exact pre-QoS code path (no QoS counters, no tenant records).
    ``chunked=True`` additionally slices prefills under a small token
    budget (chunked prefill), with the same off-knob guarantee.
    ``disagg=True`` splits the two devices into one prefill and one decode
    shard with KV-page streaming between them (repro.core.transfer);
    token sampling is per-instance, so the emitted text must be
    bit-identical to the disaggregation-off run.  ``tracing=True`` turns on
    the flight recorder (repro.core.trace), which must observe without
    perturbing: tokens, metrics and virtual timestamps stay bit-identical
    to the tracing-off run.  ``monitoring=True`` turns on the live SLO
    monitoring plane (repro.core.monitor) under the same contract.
    ``faults=True`` arms the chaos plane (repro.sim.faults +
    repro.core.health): the seeded ``fault_plan`` replays bit-identically,
    and ``faults=False`` must construct none of the chaos machinery.
    """
    sim = Simulator(seed=seed)
    tenants = (
        (
            TenantSpec(name="fleet", priority_class="interactive"),
            TenantSpec(name="backfill", priority_class="batch", max_concurrent=2),
        )
        if qos
        else ()
    )
    config = PieConfig(
        gpu=GpuConfig(num_kv_pages=96, num_devices=2, host_kv_pages=64),
        control=ControlLayerConfig(
            prefix_cache=True,
            placement_policy="disaggregated" if disagg else "cache_affinity",
            disaggregation=disagg,
            prefill_shards=1,
            qos=qos,
            tenants=tenants,
            chunked_prefill=chunked,
            # Small enough that the ~40-token fleet prompts actually slice.
            prefill_chunk_tokens=16,
            max_batch_tokens=24,
            tracing=tracing,
            monitoring=monitoring,
            faults=faults,
            fault_seed=fault_seed,
            fault_plan=tuple(tuple(entry) for entry in fault_plan),
        ),
    )
    server = PieServer(sim, config=config)
    server.register_external(TOOL_URL, lambda payload: "rows", ConstantLatency(0.2))
    programs = [make_agent(i) for i in range(n_agents)]
    for program in programs:
        server.register_program(program)

    async def one(program, delay, tenant):
        await sim.sleep(delay)
        return await server.run_inferlet(program.name, tenant=tenant)

    async def run_all():
        tasks = [
            sim.create_task(
                one(
                    p,
                    i * 0.15,
                    ("fleet" if i % 2 == 0 else "backfill") if qos else None,
                )
            )
            for i, p in enumerate(programs)
        ]
        return await sim.gather(tasks)

    results = sim.run_until_complete(run_all())
    metrics = asdict(server.metrics)
    # Instance ids embed a process-global launch counter (det0-1 vs det0-7
    # on a second run); re-key the per-inferlet block by program name so
    # only *simulation* state is compared.
    per_inferlet = {}
    for instance_id, record in metrics.pop("per_inferlet").items():
        record = dict(record)
        record.pop("inferlet_id")
        per_inferlet[instance_id.rsplit("-", 1)[0]] = record
    metrics["per_inferlet"] = per_inferlet
    out = {
        "now": sim.now,
        "results": [(r.status, r.result) for r in results],
        "metrics": metrics,
    }
    if server.trace is not None:
        categories = {}
        for event in server.trace.events():
            categories[event["cat"]] = categories.get(event["cat"], 0) + 1
        out["trace_categories"] = categories
    if server.monitor is not None:
        out["monitor_scrapes"] = server.monitor.scrapes_taken
        out["monitor_snapshot"] = server.monitor.registry.scalar_snapshot()
    return out


def test_identical_seeded_runs_are_bit_identical():
    first = run_stack()
    second = run_stack()
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    # The scenario actually exercises the stack under test.
    assert first["metrics"]["prefix_cache_hits"] > 0
    assert first["metrics"]["swap_outs"] > 0


def test_qos_off_is_bit_identical_and_leaves_no_qos_trace():
    """The qos=off default takes the exact pre-QoS serving path: two
    seeded runs agree bit-for-bit and no QoS machinery leaves a trace."""
    first = run_stack(qos=False)
    second = run_stack(qos=False)
    assert first["now"] == second["now"]
    assert first["metrics"] == second["metrics"]
    for counter in (
        "qos_admitted",
        "qos_queued",
        "qos_rejected",
        "qos_preemption_swaps",
        "qos_preemption_terminations",
    ):
        assert first["metrics"][counter] == 0, counter
    assert first["metrics"]["tenants"] == {}


def test_qos_on_stack_is_bit_identical():
    """Determinism holds with the full QoS layer active (admission queue
    timers, slack scoring, fair-share counters, tenant metrics)."""
    first = run_stack(qos=True)
    second = run_stack(qos=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    # The scenario exercised the QoS machinery, not just its knobs.
    assert first["metrics"]["qos_admitted"] > 0
    assert set(first["metrics"]["tenants"]) == {"fleet", "backfill"}


def test_chunked_off_default_leaves_no_chunk_trace():
    """chunked_prefill=False (the default) must never touch the chunking
    machinery: the counters stay zero on the full-stack run."""
    run = run_stack(chunked=False)
    for counter in (
        "prefill_chunks_dispatched",
        "decode_rows_co_batched",
        "chunk_stall_saved_seconds",
    ):
        assert run["metrics"][counter] == 0, counter


def test_chunked_on_stack_is_bit_identical():
    """Determinism holds with chunked prefill slicing live on the full
    cluster + swap + prefix-cache stack (and the slices really happen)."""
    first = run_stack(chunked=True)
    second = run_stack(chunked=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["metrics"]["prefill_chunks_dispatched"] > 0


def test_chunked_and_qos_stack_is_bit_identical():
    """The full stack with *every* subsystem on: QoS admission/dispatch
    plus chunked prefill must still be deterministic run-to-run."""
    first = run_stack(qos=True, chunked=True)
    second = run_stack(qos=True, chunked=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["metrics"]["prefill_chunks_dispatched"] > 0
    assert first["metrics"]["qos_admitted"] > 0


def test_different_seeds_still_complete():
    run = run_stack(seed=8)
    assert all(status == "finished" for status, _ in run["results"])


def test_disagg_off_default_leaves_no_trace():
    """disaggregation=False (the default) must never touch the transfer
    machinery: no KvTransferScheduler, no chunk listeners, zero counters."""
    run = run_stack(disagg=False)
    for counter in (
        "disagg_handoffs",
        "disagg_handoff_failures",
        "disagg_pages_streamed",
        "disagg_pages_tail",
        "disagg_bytes_streamed",
        "disagg_handoff_stall_seconds",
    ):
        assert run["metrics"][counter] == 0, counter
    # Structural inertness, not just quiet counters: the off-knob server
    # builds no transfer scheduler and installs no streaming hooks.
    sim = Simulator(seed=1)
    server = PieServer(sim, num_devices=2)
    service = server.service()
    assert service.transfer is None
    for shard in service.shards:
        assert shard.role == "mixed"
        assert shard.scheduler._chunk_listener is None


def test_disagg_on_stack_is_bit_identical():
    """Determinism holds with prefill/decode disaggregation live on the
    full cluster + swap + prefix-cache stack (and handoffs really happen)."""
    first = run_stack(disagg=True)
    second = run_stack(disagg=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["metrics"]["disagg_handoffs"] > 0


def test_disagg_tokens_match_disagg_off():
    """Migrating an inferlet mid-flight must not change what it says.

    KV pages and embed slots are copied content-exactly and sampling uses
    the per-instance rng, so the emitted text (and finish status) of every
    inferlet is bit-identical whether the fleet ran disaggregated or not —
    only placement and timing may differ."""
    on = run_stack(disagg=True)
    off = run_stack(disagg=False)
    assert all(status == "finished" for status, _ in on["results"])
    assert on["results"] == off["results"]
    assert on["metrics"]["disagg_handoffs"] > 0


def test_tracing_off_default_is_inert():
    """tracing=False (the default) constructs no recorder at all: the
    off-knob path is structurally inert, not merely quiet."""
    sim = Simulator(seed=1)
    server = PieServer(sim, num_devices=2)
    assert server.trace is None
    assert server.controller.trace is None
    for shard in server.service().shards:
        assert shard.scheduler._trace is None


def test_tracing_on_does_not_perturb_the_run():
    """The flight recorder observes without perturbing: tokens, metrics
    and every virtual timestamp are bit-identical with tracing on vs off,
    on the full qos+chunked+disagg stack (and the trace is non-trivial)."""
    on = run_stack(qos=True, chunked=True, disagg=True, tracing=True)
    off = run_stack(qos=True, chunked=True, disagg=True, tracing=False)
    assert on["now"] == off["now"]
    assert on["results"] == off["results"]
    assert on["metrics"] == off["metrics"]
    categories = on["trace_categories"]
    for cat in ("lifecycle", "admission", "queue", "exec", "sched", "swap", "transfer", "counter"):
        assert categories.get(cat, 0) > 0, cat


def test_tracing_on_is_bit_identical_run_to_run():
    first = run_stack(qos=True, chunked=True, disagg=True, tracing=True)
    second = run_stack(qos=True, chunked=True, disagg=True, tracing=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["trace_categories"] == second["trace_categories"]


def test_monitoring_off_default_is_inert():
    """monitoring=False (the default) constructs no monitor at all: no
    registry, no SLO engine, no scrape timer — structural inertness."""
    sim = Simulator(seed=1)
    server = PieServer(sim, num_devices=2)
    assert server.monitor is None
    assert server.controller.monitor is None


def test_monitoring_on_does_not_perturb_the_run():
    """The monitor observes without perturbing: tokens, metrics and every
    virtual timestamp are bit-identical with monitoring on vs off, on the
    full qos+chunked+disagg stack (and the monitor actually scraped)."""
    on = run_stack(qos=True, chunked=True, disagg=True, monitoring=True)
    off = run_stack(qos=True, chunked=True, disagg=True, monitoring=False)
    assert on["now"] == off["now"]
    assert on["results"] == off["results"]
    assert on["metrics"] == off["metrics"]
    assert on["monitor_scrapes"] > 0
    assert any(
        key.startswith("pie_requests_total") for key in on["monitor_snapshot"]
    )


def test_monitoring_on_is_bit_identical_run_to_run():
    first = run_stack(qos=True, chunked=True, disagg=True, monitoring=True)
    second = run_stack(qos=True, chunked=True, disagg=True, monitoring=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["monitor_scrapes"] == second["monitor_scrapes"]
    assert first["monitor_snapshot"] == second["monitor_snapshot"]


CHAOS_PLAN = (
    # One straggler window, one tool-error window, then a fail-stop crash
    # of shard 0 — where cache affinity clusters the fleet — while the
    # staggered launches are still mid-flight, forcing a failover sweep.
    ("shard_slowdown", 0.3, 1, 3.0, 0.4),
    ("tool_error", 0.6, 0.4, TOOL_URL),
    ("shard_crash", 0.5, 0),
)


def test_faults_off_default_is_inert():
    """faults=False (the default) constructs none of the chaos machinery:
    no injector, no health service, no retry policy, no router probe —
    and the chaos counters stay zero on the full-stack run."""
    sim = Simulator(seed=1)
    server = PieServer(sim, num_devices=2)
    controller = server.controller
    assert controller.faults is None
    assert controller.health is None
    assert controller.retry is None
    assert controller.brownout is None
    for service in controller._services.values():
        assert service.router.health_probe is None
    run = run_stack(qos=True, chunked=True, disagg=True, monitoring=True)
    for counter in (
        "faults_injected",
        "shard_crashes",
        "shard_slowdowns",
        "link_faults",
        "tool_faults",
        "failover_terminations",
        "failover_relaunches",
        "tool_retries",
        "handoff_retries",
        "retries_exhausted",
        "brownout_activations",
        "brownout_shed",
    ):
        assert run["metrics"][counter] == 0, counter


def test_faults_on_with_empty_plan_does_not_perturb():
    """Arming the chaos plane with nothing scheduled observes without
    perturbing: the heartbeat probes and the retry-aware tool path leave
    tokens, metrics and virtual timestamps bit-identical to faults=off."""
    on = run_stack(qos=True, chunked=True, disagg=True, monitoring=True, faults=True)
    off = run_stack(qos=True, chunked=True, disagg=True, monitoring=True, faults=False)
    assert on["now"] == off["now"]
    assert on["results"] == off["results"]
    assert on["metrics"] == off["metrics"]


def test_chaos_replay_is_bit_identical():
    """The same (fault_seed, fault_plan) replays bit-identically: two
    seeded chaos runs — crash, straggler window, tool-error window — agree
    on every metric, timestamp and surviving token."""
    first = run_stack(
        qos=True, chunked=True, monitoring=True, faults=True, fault_plan=CHAOS_PLAN
    )
    second = run_stack(
        qos=True, chunked=True, monitoring=True, faults=True, fault_plan=CHAOS_PLAN
    )
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    # The plan actually fired and the cluster actually reacted.
    assert first["metrics"]["faults_injected"] == len(CHAOS_PLAN)
    assert first["metrics"]["shard_crashes"] == 1
    assert first["metrics"]["shard_slowdowns"] == 1
    assert first["metrics"]["tool_faults"] > 0
    assert first["metrics"]["tool_retries"] > 0
    assert (
        first["metrics"]["failover_terminations"]
        + first["metrics"]["failover_relaunches"]
        > 0
    )


def test_chaos_link_faults_replay_bit_identically_under_disagg():
    """Link flaps and latency spikes against the disaggregated KV stream
    replay bit-identically and are actually counted."""
    plan = (("link_spike", 0.25, 0.002, 0.5), ("link_flap", 0.8, 0.05))
    first = run_stack(disagg=True, faults=True, fault_plan=plan)
    second = run_stack(disagg=True, faults=True, fault_plan=plan)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["metrics"]["link_faults"] > 0
    assert first["metrics"]["disagg_handoffs"] > 0


def test_disagg_composed_with_qos_and_chunked_is_bit_identical():
    """The full stack with *every* subsystem on — QoS admission/dispatch,
    chunked prefill slicing, swap tier, prefix cache AND disaggregated
    shard roles — must stay deterministic, keep streaming chunk-wise, and
    still emit the same tokens as the disaggregation-off composition."""
    first = run_stack(qos=True, chunked=True, disagg=True)
    second = run_stack(qos=True, chunked=True, disagg=True)
    assert first["now"] == second["now"]
    assert first["results"] == second["results"]
    assert first["metrics"] == second["metrics"]
    assert first["metrics"]["disagg_handoffs"] > 0
    assert first["metrics"]["prefill_chunks_dispatched"] > 0
    assert first["metrics"]["qos_admitted"] > 0
    off = run_stack(qos=True, chunked=True, disagg=False)
    assert first["results"] == off["results"]
