"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import CancelledError, SimulationError
from repro.sim import ConstantLatency, NetworkLink, NormalLatency, Simulator, UniformLatency
from repro.sim.futures import SimFuture
from repro.sim.latency import microseconds, milliseconds


@pytest.fixture()
def sim():
    return Simulator(seed=7)


class TestFutures:
    def test_initially_pending(self, sim):
        fut = sim.create_future()
        assert not fut.done()
        with pytest.raises(SimulationError):
            fut.result()

    def test_set_result(self, sim):
        fut = sim.create_future()
        fut.set_result(42)
        assert fut.done()
        assert fut.result() == 42
        assert fut.exception() is None

    def test_set_exception(self, sim):
        fut = sim.create_future()
        fut.set_exception(ValueError("boom"))
        assert fut.done()
        with pytest.raises(ValueError):
            fut.result()

    def test_double_resolution_rejected(self, sim):
        fut = sim.create_future()
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)

    def test_cancel(self, sim):
        fut = sim.create_future()
        assert fut.cancel()
        assert fut.cancelled()
        with pytest.raises(CancelledError):
            fut.result()

    def test_cancel_after_done_is_noop(self, sim):
        fut = sim.create_future()
        fut.set_result(1)
        assert not fut.cancel()
        assert fut.result() == 1

    def test_callback_runs_via_event_loop(self, sim):
        fut = sim.create_future()
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        fut.set_result("x")
        assert seen == []  # deferred to the loop
        sim.run()
        assert seen == ["x"]

    def test_callback_on_already_done_future(self, sim):
        fut = sim.create_future()
        fut.set_result(3)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        sim.run()
        assert seen == [3]

    def test_unbound_future_invokes_callbacks_synchronously(self):
        fut = SimFuture()
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        fut.set_result(5)
        assert seen == [5]


class TestClockAndScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_orders_by_time(self, sim):
        order = []
        sim.schedule(0.2, order.append, "b")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.3, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == pytest.approx(0.3)

    def test_same_time_is_fifo(self, sim):
        order = []
        for label in "abcd":
            sim.schedule(0.5, order.append, label)
        sim.run()
        assert order == list("abcd")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_call_at_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        handle = sim.schedule(0.1, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_run_until_bound(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(5.0, seen.append, "late")
        sim.run(until=2.0)
        assert seen == ["early"]
        assert sim.now == pytest.approx(2.0)
        sim.run()
        assert seen == ["early", "late"]

    def test_max_events_guard(self, sim):
        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)


class TestTasks:
    def test_simple_coroutine_result(self, sim):
        async def work():
            await sim.sleep(0.5)
            return "done"

        result = sim.run_until_complete(work())
        assert result == "done"
        assert sim.now == pytest.approx(0.5)

    def test_nested_awaits_accumulate_time(self, sim):
        async def inner(delay):
            await sim.sleep(delay)
            return delay

        async def outer():
            a = await inner(0.1)
            b = await inner(0.2)
            return a + b

        assert sim.run_until_complete(outer()) == pytest.approx(0.3)
        assert sim.now == pytest.approx(0.3)

    def test_task_exception_propagates(self, sim):
        async def boom():
            await sim.sleep(0.1)
            raise RuntimeError("failure inside task")

        with pytest.raises(RuntimeError, match="failure inside task"):
            sim.run_until_complete(boom())

    def test_parallel_tasks_overlap_in_time(self, sim):
        async def worker(delay):
            await sim.sleep(delay)
            return sim.now

        async def main():
            t1 = sim.create_task(worker(1.0))
            t2 = sim.create_task(worker(1.0))
            return await sim.gather([t1, t2])

        results = sim.run_until_complete(main())
        assert results == [pytest.approx(1.0), pytest.approx(1.0)]
        assert sim.now == pytest.approx(1.0)

    def test_gather_empty(self, sim):
        async def main():
            return await sim.gather([])

        assert sim.run_until_complete(main()) == []

    def test_gather_propagates_exception(self, sim):
        async def good():
            await sim.sleep(0.1)
            return 1

        async def bad():
            await sim.sleep(0.05)
            raise ValueError("bad task")

        async def main():
            return await sim.gather([sim.create_task(good()), sim.create_task(bad())])

        with pytest.raises(ValueError, match="bad task"):
            sim.run_until_complete(main())

    def test_cancel_task(self, sim):
        progress = []

        async def worker():
            progress.append("start")
            await sim.sleep(10.0)
            progress.append("end")

        task = sim.create_task(worker())
        sim.schedule(1.0, task.cancel)
        sim.run()
        assert progress == ["start"]
        assert task.cancelled()

    def test_deadlock_detection(self, sim):
        async def waits_forever():
            await sim.create_future()

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(waits_forever())

    def test_timeout_completes_first(self, sim):
        async def main():
            work = sim.sleep(0.1)
            return await sim.timeout(work, 1.0)

        done, _ = sim.run_until_complete(main())
        assert done is True

    def test_timeout_expires(self, sim):
        async def main():
            work = sim.sleep(10.0)
            return await sim.timeout(work, 0.5)

        done, value = sim.run_until_complete(main())
        assert done is False
        assert value is None


class TestHeapHygiene:
    """Lazy cancellation must not let the event heap grow without bound."""

    def test_timeout_cancels_timer_when_awaitable_wins(self, sim):
        """A resolved timeout leaves no live timer behind: the far-future
        event is tombstoned immediately instead of surviving until its
        deadline (the leak that bloated the heap one event per command).
        Only tombstones may remain, and compaction reclaims those."""

        async def main():
            for _ in range(50):
                await sim.timeout(sim.sleep(0.001), 1e6)

        sim.run_until_complete(main())
        live = sim.heap_size - sim.cancelled_in_heap
        assert live == 0
        # Without the cancel, run() would have to chew through 50 live
        # timers spread over the next 1e6 virtual seconds.
        sim.run()
        assert sim.now < 1.0

    def test_heap_occupancy_bounded_under_timeout_churn(self, sim):
        """Sustained fast-path timeouts keep heap occupancy O(live events).

        Every iteration parks one cancelled far-future timer in the heap;
        compaction must kick in once tombstones dominate, so the heap never
        holds more than ~2x the live events (plus the compaction floor)."""

        async def main():
            for _ in range(5000):
                await sim.timeout(sim.sleep(0.001), 1e6)

        sim.run_until_complete(main())
        assert sim.heap_compactions > 0
        assert sim.heap_size < 2 * Simulator._COMPACT_MIN_EVENTS

    def test_compaction_preserves_live_event_order(self, sim):
        """Compacting mid-run drops only tombstones: live events still fire
        in (time, sequence) order afterwards."""
        order = []
        handles = []
        for i in range(600):
            handles.append(sim.schedule(1.0 + i * 1e-3, order.append, i))
        sim.schedule(2.0, order.append, "tail")
        # Cancel a majority to force a compaction while events are pending.
        for handle in handles[:400]:
            handle.cancel()
        assert sim.heap_compactions >= 1
        sim.run()
        # Survivors fire at 1.4..1.599 s in index order, then the tail at 2 s.
        assert order == list(range(400, 600)) + ["tail"]

    def test_small_heaps_are_never_compacted(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.heap_compactions == 0
        assert sim.cancelled_in_heap == 1
        sim.run()
        assert sim.cancelled_in_heap == 0
        assert sim.heap_size == 0

    def test_cancel_after_execution_is_noop(self, sim):
        seen = []
        handle = sim.schedule(0.1, seen.append, "x")
        sim.run()
        assert seen == ["x"]
        handle.cancel()
        assert sim.cancelled_in_heap == 0

    def test_double_cancel_counts_once(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.cancelled_in_heap == 1
        sim.run()
        assert sim.cancelled_in_heap == 0


class TestLatencyModels:
    def test_constant(self, sim):
        model = ConstantLatency(0.02)
        assert model.sample(sim.rng) == pytest.approx(0.02)
        assert model.mean() == pytest.approx(0.02)

    def test_uniform_bounds(self, sim):
        model = UniformLatency(0.01, 0.03)
        samples = [model.sample(sim.rng) for _ in range(200)]
        assert all(0.01 <= s <= 0.03 for s in samples)
        assert model.mean() == pytest.approx(0.02)

    def test_normal_floor(self, sim):
        model = NormalLatency(0.001, 0.01, floor=0.0)
        samples = [model.sample(sim.rng) for _ in range(200)]
        assert all(s >= 0.0 for s in samples)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            ConstantLatency(-1)
        with pytest.raises(SimulationError):
            UniformLatency(0.2, 0.1)

    def test_unit_helpers(self):
        assert milliseconds(25) == pytest.approx(0.025)
        assert microseconds(30) == pytest.approx(0.00003)


class TestNetworkLink:
    def test_round_trip_pays_two_one_way_delays(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.0125))

        async def handler(payload):
            return payload * 2

        async def main():
            return await link.request(handler, 21)

        assert sim.run_until_complete(main()) == 42
        assert sim.now == pytest.approx(0.025)
        assert link.round_trips == 1

    def test_handler_time_included(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.01))

        async def handler(payload):
            await sim.sleep(0.1)
            return payload

        async def main():
            return await link.request(handler, "x")

        sim.run_until_complete(main())
        assert sim.now == pytest.approx(0.12)

    def test_counters_reset(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.0))

        async def main():
            await link.send("hello", size_bytes=10)

        sim.run_until_complete(main())
        assert link.messages_sent == 1
        assert link.bytes_sent == 10
        link.reset_counters()
        assert link.messages_sent == 0
        assert link.bytes_sent == 0

    def test_request_accounts_payload_bytes(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.001))

        async def handler(payload):
            return "ack"

        async def main():
            return await link.request(handler, "blob", size_bytes=512)

        sim.run_until_complete(main())
        assert link.round_trips == 1
        assert link.messages_sent == 2  # payload out, reply back
        assert link.bytes_sent == 512  # the zero-sized reply adds nothing

    def test_send_pays_bandwidth_term(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.01), bytes_per_second=1000.0)

        async def main():
            await link.send("x", size_bytes=500)

        sim.run_until_complete(main())
        # One-way delay plus 500 B at 1 kB/s of wire occupancy.
        assert sim.now == pytest.approx(0.01 + 0.5)

    def test_reserve_serializes_concurrent_transfers(self, sim):
        """reserve() is the transfer scheduler's no-task FIFO channel: two
        reservations made at the same instant drain back-to-back, a later
        one starts fresh once the wire has gone idle."""
        link = NetworkLink(sim, ConstantLatency(0.002), bytes_per_second=1000.0)
        first = link.reserve(1000, now=0.0)  # occupies [0, 1), lands 1.002
        second = link.reserve(500, now=0.0)  # queues: [1, 1.5), lands 1.502
        assert first == pytest.approx(1.002)
        assert second == pytest.approx(1.502)
        # Issued while the wire is still busy: queues behind both.
        third = link.reserve(500, now=1.2)
        assert third == pytest.approx(2.002)
        # Issued after the wire drained: starts at its own now.
        fourth = link.reserve(1000, now=10.0)
        assert fourth == pytest.approx(11.002)
        assert link.messages_sent == 4
        assert link.bytes_sent == 3000
        link.reset_counters()
        assert (link.messages_sent, link.bytes_sent) == (0, 0)

    def test_reserve_on_latency_only_link_costs_no_wire_time(self, sim):
        link = NetworkLink(sim, ConstantLatency(0.005))
        # No bandwidth term: payload size occupies no wire time, so two
        # reservations land at the same instant (pure propagation delay).
        assert link.reserve(10**9, now=1.0) == pytest.approx(1.005)
        assert link.reserve(10**9, now=1.0) == pytest.approx(1.005)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            link = NetworkLink(sim, UniformLatency(0.01, 0.05))
            times = []

            async def main():
                for _ in range(10):
                    await link.send(None)
                    times.append(sim.now)

            sim.run_until_complete(main())
            return times

        assert trace(123) == trace(123)
        assert trace(123) != trace(321)
